// The oracle layer: one interface for the per-iteration primitive every
// solver variant consumes.
//
// Each iteration of Algorithm 3.1 and all its schedule variants needs the
// same quantities: the per-constraint penalties dots_i ~ W . A_i and the
// normalizer trace ~ Tr[W], where W = exp(Psi) and Psi = sum_i x_i A_i is
// determined by the current weight vector x. The codebase used to wire this
// four different ways (dense eigensolves inlined in decision/bucketed/mixed,
// hand-built psi_op/psi_block_op + bigDotExp plumbing duplicated in
// decision/phased, the scalar soft-max in poslp). PenaltyOracle is the
// single interface; its three implementations are the three evaluation
// strategies the paper's complexity story distinguishes:
//
//  * DenseEigOracle       -- exact exp(Psi) via the dense symmetric
//                            eigensolver (O(m^3) per refresh). Also exposes
//                            the dense W, so callers can accumulate primal
//                            averages, and computes exact lambda_max for the
//                            measured-tight rescalings.
//  * SketchedTaylorOracle -- the Theorem 4.1 pipeline (bigDotExp): a JL
//                            sketch pushed through the truncated-Taylor
//                            exponential of the implicit Psi operator.
//                            Nearly-linear work, never forms an m x m
//                            matrix, (1 +- dot_eps) multiplicative noise.
//                            Owns the psi_op/psi_block_op panel operators
//                            and their reusable workspaces.
//  * ScalarSoftmaxOracle  -- the positive-LP diagonal fast path: on
//                            A_i = diag(P_{.,i}) the matrix exponential
//                            collapses to scalar soft-max weights,
//                            O(nnz(P)) per iteration, shift-stabilized
//                            against overflow.
//
// Solvers talk to the oracle through compute() -- penalties for the current
// x -- and lambda_max() -- a certified upper bound on
// lambda_max(sum_i w_i A_i) for an arbitrary non-negative weight vector,
// exact where the representation allows it. lambda_max() is the
// measured-certificate primitive: the tight dual rescaling, bucketed's
// width cap, and mixed's final packing rescale all go through it, which is
// what lets the bucketed and mixed variants run on the sketched oracle
// with certificates that are measured rather than assumed.
//
// The stateful implementations cache Psi and diff the incoming x against
// the last weights they saw, so incremental solver updates cost what they
// did when each solver maintained Psi by hand.
#pragma once

#include <cstdint>

#include "core/bigdotexp.hpp"
#include "core/instance.hpp"
#include "util/tunables.hpp"

namespace psdp::core {

/// One oracle evaluation: penalties, normalizer, and (where the
/// representation affords them) extras for certificates and diagnostics.
struct PenaltyBatch {
  Vector dots;  ///< dots_i ~ W . A_i (exact or sketched, see noise_bound)
  Real trace = 0;  ///< Tr[W], same scale and noise model as `dots`
  /// lambda_max(Psi) observed while evaluating: the top eigenvalue for the
  /// dense oracle, the soft-max shift max_j Psi_j for the scalar one, 0
  /// (unavailable) for the sketched pipeline.
  Real lambda_max_psi = 0;
  /// Dense W = exp(Psi) (DenseEigOracle only; valid until the next
  /// compute()). Callers use it to accumulate primal-average certificates.
  const Matrix* weight = nullptr;
  /// Scalar soft-max weights w (ScalarSoftmaxOracle only; valid until the
  /// next compute()).
  const Vector* weight_vec = nullptr;
};

/// The oracle interface. Implementations may be stateful (cached Psi,
/// reusable sketch workspaces) and are not copyable.
class PenaltyOracle {
 public:
  PenaltyOracle() = default;
  PenaltyOracle(const PenaltyOracle&) = delete;
  PenaltyOracle& operator=(const PenaltyOracle&) = delete;
  virtual ~PenaltyOracle() = default;

  virtual Index size() const = 0;  ///< n, number of constraints
  virtual Index dim() const = 0;   ///< ambient dimension (m, or l for LPs)
  virtual Real constraint_trace(Index i) const = 0;  ///< Tr[A_i]

  /// Evaluate penalties and trace for the weight vector x. `round` seeds
  /// the per-round sketch noise (ignored by the exact oracles); callers
  /// pass their iteration or phase counter so noise is independent across
  /// rounds, per the union bound.
  virtual void compute(const Vector& x, std::uint64_t round,
                       PenaltyBatch& out) = 0;

  /// Multiplicative noise bound of dots/trace: 0 for the exact oracles,
  /// dot_eps for the sketched one. Callers certify primal averages against
  /// (1 + noise_bound) so noise cannot fake a certificate.
  virtual Real noise_bound() const { return 0; }

  /// Certified upper bound on lambda_max(sum_i weights_i A_i): exact for
  /// the dense and scalar oracles, an inflated Lanczos Ritz bound for the
  /// sketched one. Dividing a weight vector by this value is always
  /// feasible -- the measured-certificate primitive.
  virtual Real lambda_max(const Vector& weights) = 0;
};

/// dots_i = A_i . W for a dense symmetric weight matrix W: the parallel
/// Frobenius sweep shared by the dense oracle and the width-dependent MMW
/// baseline (which dots against its own probability matrix).
void penalty_dots(const PackingInstance& instance, const Matrix& w,
                  Vector& dots);

/// Exact oracle over dense constraints.
class DenseEigOracle final : public PenaltyOracle {
 public:
  explicit DenseEigOracle(const PackingInstance& instance);

  Index size() const override { return instance_->size(); }
  Index dim() const override { return instance_->dim(); }
  Real constraint_trace(Index i) const override {
    return instance_->constraint_trace(i);
  }
  void compute(const Vector& x, std::uint64_t round,
               PenaltyBatch& out) override;
  Real lambda_max(const Vector& weights) override;

 private:
  /// Fold x - x_cache_ into the cached Psi (PSD terms only, no
  /// cancellation drift), exactly as the solvers used to do by hand.
  void sync(const Vector& x);

  const PackingInstance* instance_;
  Matrix psi_;      ///< sum_i x_cache_i A_i, maintained incrementally
  Vector x_cache_;  ///< weights Psi currently reflects
  Matrix w_;        ///< exp(Psi) of the last compute()
};

/// Knobs of the sketched oracle -- the single funnel through which every
/// factorized entry point (decision, phased, bucketed, mixed, optimize
/// probes) routes its eps / dot_eps / bigDotExp configuration.
struct SketchedOracleOptions {
  /// The solver's algorithm eps; defaults dot_eps to eps/2 when unset.
  Real eps = 0.1;
  /// Accuracy of the exp-dot estimates (0 = auto, eps/2). Also the oracle's
  /// noise_bound().
  Real dot_eps = 0;
  /// A-priori cap on the spectral-norm bound kappa handed to bigDotExp
  /// (Lemma 3.2's (1+10 eps)K for the decision solvers). 0 = none: only the
  /// tracked runtime bound min(Tr[Psi], sum_i x_i lambda_max(A_i)) -- which
  /// is what the bucketed/mixed variants (no Lemma 3.2 invariant) rely on.
  /// Defaulted from the tunable registry (`kappa_cap`, default 0).
  Real kappa_cap = util::tunable_kappa_cap();
  /// Sketch/Taylor/blocking knobs, including block_size and the transpose
  /// kernel_plan (a caller-reloaded or forced sparse::KernelPlan applied to
  /// every factor's Q^T panels; nullptr = each factor's own autotuned
  /// plan). The seed is advanced per round via stream_seed.
  BigDotExpOptions dot_options;
  /// Caller-owned scratch shared across rounds (and, if the caller wants,
  /// across whole solves -- results are unaffected, every buffer is fully
  /// overwritten). nullptr = the oracle owns a private workspace.
  SolverWorkspace* workspace = nullptr;
};

/// Nearly-linear-work oracle over prefactored constraints (Theorem 4.1).
///
/// Stateful across rounds: the oracle diffs each incoming x against the
/// weights of the previous round (its x-copy doubles as the diff cache), so
/// the runtime spectral bounds -- Tr[Psi] and the tracked
/// sum_i x_i lambda_max(A_i) upper bound on lambda_max(Psi) -- are updated
/// incrementally instead of recomputed from scratch, and the bound pair is
/// periodically rebased to cancel float drift. The Taylor degree uses
/// kappa = min(kappa_cap, Tr[Psi], tracked lambda bound): the tracked bound
/// is clamped by Tr[Psi] so it can never be looser than the trace-only
/// bound, and it is sound (x >= 0 and the triangle inequality give
/// lambda_max(sum x_i A_i) <= sum x_i lambda_max(A_i)). On spiked spectra
/// (lambda_max << Tr) this tightens bucketed_factorized's Taylor degree
/// substantially. All sketch scratch lives in a SolverWorkspace (owned, or
/// borrowed via SketchedOracleOptions::workspace), so steady-state rounds
/// perform no heap allocations after warmup.
class SketchedTaylorOracle final : public PenaltyOracle {
 public:
  SketchedTaylorOracle(const FactorizedPackingInstance& instance,
                       const SketchedOracleOptions& options);

  Index size() const override { return instance_->size(); }
  Index dim() const override { return instance_->dim(); }
  Real constraint_trace(Index i) const override {
    return instance_->constraint_trace(i);
  }
  void compute(const Vector& x, std::uint64_t round,
               PenaltyBatch& out) override;
  Real noise_bound() const override { return dot_eps_; }
  Real lambda_max(const Vector& weights) override;

  /// Incrementally tracked Tr[Psi] = sum_i x_i Tr[A_i] at the last
  /// compute()'s weights (tests compare it against a from-scratch sum).
  Real tracked_trace() const { return trace_psi_; }
  /// Incrementally tracked sum_i x_i lambda_max(A_i) >= lambda_max(Psi).
  Real tracked_lambda_bound() const { return lambda_bound_; }
  /// Per-constraint lambda_max(A_i) upper bound used by the tracked bound
  /// (the factor's cached Gram eigenvalue, see
  /// FactorizedPsd::lambda_max_bound).
  Real constraint_lambda_max(Index i) const;
  /// Taylor degree of the last compute() (diagnostics; tests assert the
  /// spiked-spectrum tightening).
  Index last_taylor_degree() const { return result_.taylor_degree; }

 private:
  /// Fold x - x_work_ into the tracked bounds and cache x in x_work_.
  void sync_bounds(const Vector& x);

  const FactorizedPackingInstance* instance_;
  BigDotExpOptions dot_options_;
  Real dot_eps_ = 0;
  Real kappa_cap_ = 0;
  /// The weights the implicit operators read; doubles as the diff cache of
  /// the incremental bounds (it always holds the last synced weights).
  Vector x_work_;
  Real trace_psi_ = 0;     ///< tracked Tr[Psi]
  Real lambda_bound_ = 0;  ///< tracked sum_i x_i lambda_max(A_i)
  /// Absolute trace-term mass folded in since the last rebase (the
  /// cancellation guard's measure of churn).
  Real bound_flux_ = 0;
  Index rounds_since_rebase_ = 0;
  /// Rebase cadence + cancellation-guard ratio of the incremental bounds,
  /// snapshotted from the tunable registry (`rebase_interval`,
  /// `bound_flux_ratio`) at construction so one solve never mixes cadences
  /// mid-trajectory even if the registry changes under it.
  Index rebase_interval_ = 64;
  Real bound_flux_ratio_ = 8;
  /// Per-shard partials of the rebase's from-scratch bound sums (K > 1
  /// only): each shard folds serially, the partials merge in shard order
  /// 0..K-1, so the rebased bounds are a fixed-order reduction regardless
  /// of pool width. Members so the occasional rebase stays allocation-free
  /// once warm.
  std::vector<Real> shard_trace_partial_;
  std::vector<Real> shard_lambda_partial_;
  /// Sketch/Taylor scratch recycled across rounds; external when the caller
  /// provided SketchedOracleOptions::workspace.
  SolverWorkspace own_workspace_;
  SolverWorkspace* workspace_ = nullptr;
  /// Persistent result (dots storage swaps with the caller's batch).
  BigDotExpResult result_;
  linalg::SymmetricOp psi_op_;
  linalg::BlockOp psi_block_op_;
  /// Float32 panel form of the implicit Psi, handed to big_dot_exp for the
  /// mixed-precision sketch mode (engaged only when
  /// dot_options.panel_precision requests it and every gate holds; see
  /// BigDotExpOptions::panel_precision). Always built -- it is one closure.
  linalg::BlockOpF psi_block_op_f_;
};

/// Exact scalar oracle for positive LPs: A_i = diag(P_{.,i}) collapses the
/// exponential to soft-max weights over the rows of P.
class ScalarSoftmaxOracle final : public PenaltyOracle {
 public:
  /// P is l x n, non-negative with no zero column (PackingLp invariants);
  /// the caller keeps it alive.
  explicit ScalarSoftmaxOracle(const Matrix& p);

  Index size() const override { return p_->cols(); }
  Index dim() const override { return p_->rows(); }
  Real constraint_trace(Index i) const override {
    return column_sums_[static_cast<std::size_t>(i)];
  }
  void compute(const Vector& x, std::uint64_t round,
               PenaltyBatch& out) override;
  /// max_j (P weights)_j -- the exact scalar lambda_max.
  Real lambda_max(const Vector& weights) override;

 private:
  void sync(const Vector& x);

  const Matrix* p_;
  std::vector<Real> column_sums_;
  Vector psi_;      ///< P x_cache_, maintained incrementally
  Vector x_cache_;
  Vector w_;        ///< shifted soft-max weights of the last compute()
};

}  // namespace psdp::core
