#include "core/bigdotexp.hpp"

#include <cmath>

#include "linalg/power.hpp"
#include "linalg/taylor.hpp"
#include "par/cost_meter.hpp"
#include "par/parallel.hpp"
#include "rand/jl.hpp"

namespace psdp::core {

namespace {

/// Rows of S = Pi * p_hat(Phi/2), stored row-major (r x m). Row j is
/// p_hat(Phi/2)^T pi_j = p_hat(Phi/2) pi_j (Phi symmetric), one truncated-
/// Taylor application per row, all rows in parallel.
std::vector<Real> sketch_times_exp_half(const linalg::SymmetricOp& phi,
                                        Index dim, Index rows, Index degree,
                                        std::uint64_t seed, bool exact) {
  std::vector<Real> s(static_cast<std::size_t>(rows * dim));
  // Half-scaled operator: Lemma 4.2 is applied to B = Phi/2.
  const linalg::SymmetricOp half = [&phi](const Vector& x, Vector& y) {
    phi(x, y);
    y.scale(0.5);
  };
  std::optional<rand::GaussianSketch> pi;
  if (!exact) pi.emplace(rows, dim, seed);

  par::global_pool();  // warm up outside the loop (lazy init)
  par::parallel_for(0, rows, [&](Index j) {
    Vector x(dim);
    if (exact) {
      x[j] = 1;  // identity sketch: row j of p_hat itself
    } else {
      const auto row = pi->row(j);
      for (Index i = 0; i < dim; ++i) x[i] = row[static_cast<std::size_t>(i)];
    }
    Vector y(dim);
    linalg::apply_exp_taylor(half, degree, x, y);
    Real* out = s.data() + j * dim;
    for (Index i = 0; i < dim; ++i) out[i] = y[i];
  }, /*grain=*/1);
  return s;
}

}  // namespace

BigDotExpResult big_dot_exp(const linalg::SymmetricOp& phi, Index dim,
                            Real kappa, const sparse::FactorizedSet& as,
                            const BigDotExpOptions& options) {
  PSDP_CHECK(dim >= 1, "big_dot_exp: dimension must be positive");
  PSDP_CHECK(as.dim() == dim, "big_dot_exp: constraint dimension mismatch");
  PSDP_CHECK(kappa >= 0, "big_dot_exp: kappa must be non-negative");
  PSDP_CHECK(options.eps > 0 && options.eps < 1,
             "big_dot_exp: eps must lie in (0,1)");

  BigDotExpResult result;

  // Error budget: the Taylor truncation contributes up to 2*eps_t relative
  // error to ||p_hat Q||^2 (p_hat and exp commute, both PSD), the sketch
  // contributes +-eps_jl; split the target eps between them.
  const Real eps_taylor = options.eps / 4;
  const Real eps_jl = options.eps / 2;

  // Lemma 4.2 degree for B = Phi/2 (norm kappa/2); Theorem 4.1 uses
  // kappa >= max(1, ||Phi||_2), enforce the max(1, .) here.
  const Real kappa_half = std::max<Real>(1, kappa) / 2;
  result.taylor_degree =
      options.taylor_degree_override > 0
          ? options.taylor_degree_override
          : linalg::taylor_exp_degree(kappa_half, eps_taylor);

  // The identity "sketch" is exact and cheaper whenever the JL formula asks
  // for at least m rows (small instances); an explicit override is honored
  // verbatim so experiments can study sketching at any row count.
  if (options.sketch_rows_override > 0) {
    result.exact_sketch = false;
    result.sketch_rows = options.sketch_rows_override;
  } else {
    const Index jl = rand::jl_rows(dim, eps_jl, options.delta);
    result.exact_sketch = jl >= dim;
    result.sketch_rows = result.exact_sketch ? dim : jl;
  }

  const std::vector<Real> s =
      sketch_times_exp_half(phi, dim, result.sketch_rows,
                            result.taylor_degree, options.seed,
                            result.exact_sketch);
  const Index r = result.sketch_rows;

  // Tr[exp(Phi)] = ||exp(Phi/2)||_F^2 ~ ||S||_F^2.
  result.trace_exp = par::parallel_sum(
      0, r * dim, [&](Index k) { return sq(s[static_cast<std::size_t>(k)]); });

  // dots_i = ||S Q_i||_F^2. S Q_i is r x k_i; accumulate per constraint by
  // streaming the nonzeros of Q_i: entry (row, col, v) adds v * S[:, row]
  // to output column col.
  result.dots = Vector(as.size());
  par::parallel_for(0, as.size(), [&](Index i) {
    const sparse::Csr& q = as[i].q();
    const Index k = q.cols();
    std::vector<Real> sq_cols(static_cast<std::size_t>(r * k), 0.0);
    for (Index row = 0; row < q.rows(); ++row) {
      const auto cols = q.row_cols(row);
      const auto vals = q.row_vals(row);
      for (std::size_t e = 0; e < cols.size(); ++e) {
        const Index c = cols[e];
        const Real v = vals[e];
        // S[:, row] has stride dim.
        for (Index j = 0; j < r; ++j) {
          sq_cols[static_cast<std::size_t>(j * k + c)] +=
              v * s[static_cast<std::size_t>(j * dim + row)];
        }
      }
    }
    Real acc = 0;
    for (const Real v : sq_cols) acc += v * v;
    result.dots[i] = acc;
  }, /*grain=*/1);

  par::CostMeter::add_work(static_cast<std::uint64_t>(
      2 * r * (as.total_nnz() + dim)));
  par::CostMeter::add_depth(par::reduction_depth(dim) +
                            par::reduction_depth(as.size()));
  return result;
}

BigDotExpResult big_dot_exp(const sparse::Csr& phi, Real kappa,
                            const sparse::FactorizedSet& as,
                            const BigDotExpOptions& options) {
  PSDP_CHECK(phi.rows() == phi.cols(), "big_dot_exp: Phi must be square");
  const linalg::SymmetricOp op = [&phi](const Vector& x, Vector& y) {
    phi.apply(x, y);
  };
  Real k = kappa;
  if (k <= 0) {
    k = linalg::lambda_max_upper_bound(op, phi.rows());
  }
  return big_dot_exp(op, phi.rows(), k, as, options);
}

}  // namespace psdp::core
