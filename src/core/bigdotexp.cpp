#include "core/bigdotexp.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>

#include "linalg/power.hpp"
#include "linalg/taylor.hpp"
#include "par/cost_meter.hpp"
#include "par/parallel.hpp"
#include "rand/jl.hpp"
#include "simd/simd.hpp"

namespace psdp::core {

const char* panel_precision_name(PanelPrecision precision) {
  switch (precision) {
    case PanelPrecision::kDouble:
      return "double";
    case PanelPrecision::kFloat32:
      return "float32";
  }
  return "unknown";
}

namespace {

using linalg::Matrix;

/// Lemma 4.2 is applied to B = Phi/2: the blocked kernels fold the 1/2 into
/// the Taylor recurrence's per-step scale (bitwise identical -- powers of
/// two scale exactly -- and saves the per-call wrapper closure the old
/// half-operator needed); the single-vector reference path below keeps the
/// explicit wrapper.
inline constexpr Real kHalfScale = 0.5;

/// Shard partition threaded through the sweeps: empty (or the trivial
/// {0, n}) means the legacy unsharded code path, byte-for-byte. More than
/// one shard engages the deterministic mode -- the per-constraint sweep
/// runs shard-by-shard in fixed order, and every cross-constraint
/// floating-point reduction switches from parallel_sum (whose chunking
/// follows the pool width) to par::deterministic_sum (fixed chunking).
struct ShardSpan {
  std::span<const Index> offsets;

  bool deterministic() const { return offsets.size() > 2; }

  /// Fold `body(k)` over [0, n): the legacy pool-width-chunked reduction in
  /// the unsharded mode, the fixed-chunk one in deterministic mode.
  template <typename Body>
  Real sum(Index n, Body&& body) const {
    return deterministic() ? par::deterministic_sum(0, n, body)
                           : par::parallel_sum(0, n, body);
  }

  /// Run `body(i)` for every constraint, grain 1. Deterministic mode issues
  /// one parallel_for per shard, in shard order -- each constraint's work
  /// is serial either way, so this only pins the sweep boundaries (and the
  /// metered shape) to the partition, never the bits of dots_i themselves.
  template <typename Body>
  void for_each_constraint(Index n, Body&& body) const {
    if (!deterministic()) {
      par::parallel_for(0, n, body, /*grain=*/1);
      return;
    }
    for (std::size_t k = 0; k + 1 < offsets.size(); ++k) {
      par::parallel_for(offsets[k], offsets[k + 1], body, /*grain=*/1);
    }
  }
};

/// Rows of S = Pi * p_hat(Phi/2), stored row-major (r x m). Row j is
/// p_hat(Phi/2)^T pi_j = p_hat(Phi/2) pi_j (Phi symmetric), one truncated-
/// Taylor application per row, all rows in parallel. This is the
/// single-vector reference path (block_size 1), kept verbatim as the
/// correctness baseline for the blocked kernels.
std::vector<Real> sketch_times_exp_half(const linalg::SymmetricOp& phi,
                                        Index dim, Index rows, Index degree,
                                        std::uint64_t seed, bool exact) {
  std::vector<Real> s(static_cast<std::size_t>(rows * dim));
  // Half-scaled operator: Lemma 4.2 is applied to B = Phi/2.
  const linalg::SymmetricOp half = [&phi](const Vector& x, Vector& y) {
    phi(x, y);
    y.scale(0.5);
  };
  std::optional<rand::GaussianSketch> pi;
  if (!exact) pi.emplace(rows, dim, seed);

  par::global_pool();  // warm up outside the loop (lazy init)
  par::parallel_for(0, rows, [&](Index j) {
    Vector x(dim);
    if (exact) {
      x[j] = 1;  // identity sketch: row j of p_hat itself
    } else {
      const auto row = pi->row(j);
      for (Index i = 0; i < dim; ++i) x[i] = row[static_cast<std::size_t>(i)];
    }
    Vector y(dim);
    linalg::apply_exp_taylor(half, degree, x, y);
    Real* out = s.data() + j * dim;
    for (Index i = 0; i < dim; ++i) out[i] = y[i];
  }, /*grain=*/1);
  return s;
}

/// Fill x_panel with sketch rows [j0, j0 + b): identity columns when the
/// sketch is exact (exactness implies rows == dim, so j0 + t < dim),
/// deferred Gaussian rows otherwise. Reuses x_panel's storage (capacity-
/// preserving reshape). Shared by the two-pass and fused blocked kernels,
/// which must generate bit-identical panels.
void fill_sketch_panel(const std::optional<rand::GaussianSketch>& pi,
                       bool exact, Index dim, Index j0, Index b,
                       Matrix& x_panel) {
  if (exact) {
    x_panel.reshape(dim, b);
    x_panel.fill(0);
    for (Index t = 0; t < b; ++t) x_panel(j0 + t, t) = 1;
  } else {
    pi->fill_block(j0, b, x_panel);
  }
}

/// Blocked path: S^T = p_hat(Phi/2) Pi^T, stored row-major m x r (entry
/// (i, j) = S_{ji}), computed one m x b panel at a time. Each panel of b
/// sketch rows is generated straight into panel storage, pushed through the
/// degree-k recurrence with the workspace's two scratch panels, and
/// scattered into its columns of S^T. The m x r layout makes S[:, row] --
/// the access pattern of the dots accumulation -- a contiguous length-r
/// span.
std::vector<Real> sketch_times_exp_half_blocked(
    const linalg::BlockOp& phi_block, Index dim, Index rows, Index degree,
    std::uint64_t seed, bool exact, Index block, SolverWorkspace& ws) {
  std::vector<Real> st(static_cast<std::size_t>(dim * rows));
  std::optional<rand::GaussianSketch> pi;
  if (!exact) pi.emplace(rand::GaussianSketch::deferred(rows, dim, seed));

  par::global_pool();  // warm up outside the loop (lazy init)
  for (Index j0 = 0; j0 < rows; j0 += block) {
    const Index b = std::min(block, rows - j0);
    fill_sketch_panel(pi, exact, dim, j0, b, ws.x_panel);
    linalg::apply_exp_taylor_block(phi_block, degree, ws.x_panel, ws.y_panel,
                                   ws, kHalfScale);
    par::parallel_for(0, dim, [&](Index i) {
      const Real* src = ws.y_panel.data() + i * b;
      Real* dst = st.data() + i * rows + j0;
      for (Index t = 0; t < b; ++t) dst[t] = src[t];
    });
  }
  return st;
}

/// dots_i = ||S Q_i||_F^2 from the reference r x m layout: entry
/// (row, c, v) of Q_i adds v * S[:, row] (stride dim) to output column c.
void accumulate_dots_reference(const std::vector<Real>& s, Index dim, Index r,
                               const sparse::FactorizedSet& as,
                               Vector& dots) {
  par::parallel_for(0, as.size(), [&](Index i) {
    const sparse::Csr& q = as[i].q();
    const Index k = q.cols();
    std::vector<Real> sq_cols(static_cast<std::size_t>(r * k), 0.0);
    for (Index row = 0; row < q.rows(); ++row) {
      const auto cols = q.row_cols(row);
      const auto vals = q.row_vals(row);
      for (std::size_t e = 0; e < cols.size(); ++e) {
        const Index c = cols[e];
        const Real v = vals[e];
        for (Index j = 0; j < r; ++j) {
          sq_cols[static_cast<std::size_t>(j * k + c)] +=
              v * s[static_cast<std::size_t>(j * dim + row)];
        }
      }
    }
    Real acc = 0;
    for (const Real v : sq_cols) acc += v * v;
    dots[i] = acc;
    par::CostMeter::add_work(
        static_cast<std::uint64_t>(r * (2 * q.nnz() + 2 * k)));
  }, /*grain=*/1);
}

/// Fused blocked path (the ROADMAP "one pass over S" item): panels of
/// `block` sketch rows go through the Taylor recurrence and their
/// contribution to every dots_i and to the trace is accumulated as soon as
/// the panel's last Taylor step finishes, while the panel is cache-hot.
/// Per panel and constraint, entry (row, c, v) of Q_i performs a contiguous
/// length-b AXPY from the panel row into a k x b accumulator whose squared
/// entries are the panel's share of ||S Q_i||_F^2. Nothing m x r is ever
/// materialized, and S is neither written back nor re-read. All scratch --
/// panels, Taylor recurrence, per-constraint accumulators -- lives in the
/// caller-owned workspace, so repeated calls allocate nothing once warm.
/// Returns the trace estimate ||S||_F^2; `dots` must be zero-initialized.
Real sketch_exp_dots_fused(const linalg::BlockOp& phi_block, Index dim,
                           Index rows, Index degree, std::uint64_t seed,
                           bool exact, Index block,
                           const sparse::FactorizedSet& as, ShardSpan shards,
                           SolverWorkspace& ws, Vector& dots) {
  std::optional<rand::GaussianSketch> pi;
  if (!exact) pi.emplace(rand::GaussianSketch::deferred(rows, dim, seed));

  // One k_i x b accumulator per constraint, recycled across panels and
  // across calls (assign() reuses capacity), so the hot parallel_for
  // performs no heap traffic once the workspace has seen this instance.
  if (static_cast<Index>(ws.accumulators.size()) < as.size()) {
    ws.accumulators.resize(static_cast<std::size_t>(as.size()));
  }
  Real trace = 0;
  par::global_pool();  // warm up outside the loop (lazy init)
  for (Index j0 = 0; j0 < rows; j0 += block) {
    const Index b = std::min(block, rows - j0);
    fill_sketch_panel(pi, exact, dim, j0, b, ws.x_panel);
    linalg::apply_exp_taylor_block(phi_block, degree, ws.x_panel, ws.y_panel,
                                   ws, kHalfScale);
    // Tr[exp(Phi)] ~ ||S||_F^2, one panel's rows at a time.
    trace += shards.sum(dim * b, [&](Index k) {
      return sq(ws.y_panel.data()[static_cast<std::size_t>(k)]);
    });
    // Per constraint: the panel's rows scatter into a k_i x b accumulator
    // through the dispatch seam (the scatter kernel is exactly this AXPY
    // loop; its scalar backend is the verbatim pre-seam loop), then the
    // accumulator's squared mass -- the panel's share of ||S Q_i||_F^2 --
    // reduces through the same seam.
    const simd::KernelTable& kt = simd::active_kernels();
    shards.for_each_constraint(as.size(), [&](Index i) {
      const sparse::Csr& q = as[i].q();
      const Index k = q.cols();
      std::vector<Real>& acc = ws.accumulators[static_cast<std::size_t>(i)];
      acc.assign(static_cast<std::size_t>(k * b), 0.0);
      kt.scatter_rows(q.row_offsets().data(), q.col_indices().data(),
                      q.values().data(), 0, q.rows(), b, ws.y_panel.data(),
                      acc.data());
      dots[i] += kt.sum_sq(acc.data(), k * b);
      par::CostMeter::add_work(
          static_cast<std::uint64_t>(b * (2 * q.nnz() + 2 * k)));
    });
    // Critical path of this panel beyond the Taylor sweep (which charges
    // its own depth): the trace reduction and the constraint sweep both
    // finish before the next panel starts, so they stack across the
    // ceil(r/block) sequential panels.
    par::CostMeter::add_depth(par::reduction_depth(dim * b) +
                              par::reduction_depth(as.size()));
  }
  return trace;
}

/// Float32 twin of sketch_exp_dots_fused -- the mixed-precision sketch mode.
/// The sketch panel is generated in double (bit-identical to the double
/// path's panels, same seed stream) and rounded once to float; the Taylor
/// recurrence then runs entirely on float panels through the caller's float
/// block operator, and every reduction that feeds a certificate -- the
/// trace and each panel's dots share -- is a compensated *double* sum over
/// the float data (sum_sq_f), so float error enters only as O(eps_f) panel
/// rounding, inside the margin the JL noise budget already absorbs
/// (docs/noisy_oracle_margin.md). Per-factor float value copies live in the
/// workspace (ensure_float_values), so steady-state rounds stay
/// allocation-free here too.
Real sketch_exp_dots_fused_f(const linalg::BlockOpF& phi_block_f, Index dim,
                             Index rows, Index degree, std::uint64_t seed,
                             bool exact, Index block,
                             const sparse::FactorizedSet& as, ShardSpan shards,
                             SolverWorkspace& ws, Vector& dots) {
  std::optional<rand::GaussianSketch> pi;
  if (!exact) pi.emplace(rand::GaussianSketch::deferred(rows, dim, seed));

  const simd::KernelTable& kt = simd::active_kernels();
  as.ensure_float_values(ws.factor);
  if (static_cast<Index>(ws.accumulators_f.size()) < as.size()) {
    ws.accumulators_f.resize(static_cast<std::size_t>(as.size()));
  }
  Real trace = 0;
  par::global_pool();  // warm up outside the loop (lazy init)
  for (Index j0 = 0; j0 < rows; j0 += block) {
    const Index b = std::min(block, rows - j0);
    fill_sketch_panel(pi, exact, dim, j0, b, ws.x_panel);
    ws.x_panel_f.reshape(dim, b);
    kt.convert_d2f(ws.x_panel.data(), ws.x_panel_f.data(), dim * b);
    linalg::apply_exp_taylor_block_f(phi_block_f, degree, ws.x_panel_f,
                                     ws.y_panel_f, ws.taylor_f,
                                     static_cast<float>(kHalfScale));
    // sum_sq_f is a serial compensated double sum -- already independent of
    // the pool width -- so the trace needs no deterministic variant here.
    trace += kt.sum_sq_f(ws.y_panel_f.data(), dim * b);
    shards.for_each_constraint(as.size(), [&](Index i) {
      const sparse::Csr& q = as[i].q();
      const Index k = q.cols();
      const auto& fv =
          ws.factor.float_values[static_cast<std::size_t>(i)];
      std::vector<float>& acc =
          ws.accumulators_f[static_cast<std::size_t>(i)];
      acc.assign(static_cast<std::size_t>(k * b), 0.0f);
      kt.scatter_rows_f(q.row_offsets().data(), q.col_indices().data(),
                        fv.values.data(), 0, q.rows(), b,
                        ws.y_panel_f.data(), acc.data());
      dots[i] += kt.sum_sq_f(acc.data(), k * b);
      par::CostMeter::add_work(
          static_cast<std::uint64_t>(b * (2 * q.nnz() + 2 * k)));
    });
    // Same model costs as the double path: precision changes constants,
    // not the metered work/depth shape.
    par::CostMeter::add_work(static_cast<std::uint64_t>(2 * dim * b));
    par::CostMeter::add_depth(par::reduction_depth(dim * b) +
                              par::reduction_depth(as.size()));
  }
  return trace;
}

/// dots_i from the m x r transposed layout, tiled over sketch columns so
/// the k x tile accumulator stays cache-resident: for each tile of S^T's
/// columns, entry (row, c, v) of Q_i performs a contiguous length-tile AXPY
/// from S^T[row, tile] into the accumulator row c.
void accumulate_dots_blocked(const std::vector<Real>& st, Index r,
                             const sparse::FactorizedSet& as, Vector& dots) {
  constexpr Index kSketchTile = 256;
  par::parallel_for(0, as.size(), [&](Index i) {
    const sparse::Csr& q = as[i].q();
    const Index k = q.cols();
    const Index tile_width = std::min(kSketchTile, r);
    std::vector<Real> tile(static_cast<std::size_t>(k * tile_width));
    Real acc = 0;
    for (Index j0 = 0; j0 < r; j0 += tile_width) {
      const Index tw = std::min(tile_width, r - j0);
      std::fill(tile.begin(), tile.begin() + k * tw, Real{0});
      for (Index row = 0; row < q.rows(); ++row) {
        const auto cols = q.row_cols(row);
        const auto vals = q.row_vals(row);
        const Real* srow = st.data() + row * r + j0;
        for (std::size_t e = 0; e < cols.size(); ++e) {
          Real* out = tile.data() + cols[e] * tw;
          const Real v = vals[e];
          for (Index t = 0; t < tw; ++t) out[t] += v * srow[t];
        }
      }
      for (Index idx = 0; idx < k * tw; ++idx) acc += sq(tile[idx]);
    }
    dots[i] = acc;
    par::CostMeter::add_work(
        static_cast<std::uint64_t>(r * (2 * q.nnz() + 2 * k)));
  }, /*grain=*/1);
}

/// Shared implementation of the two workspace-form entry points. An empty
/// (or single-shard) `shards` runs the pre-sharding code byte-for-byte;
/// K > 1 pins every cross-constraint reduction order (see ShardSpan).
void big_dot_exp_impl(const linalg::SymmetricOp& phi,
                      const linalg::BlockOp& phi_block, Index dim, Real kappa,
                      const sparse::FactorizedSet& as, ShardSpan shards,
                      const BigDotExpOptions& options,
                      SolverWorkspace& workspace, BigDotExpResult& result,
                      const linalg::BlockOpF* phi_block_f) {
  PSDP_CHECK(dim >= 1, "big_dot_exp: dimension must be positive");
  PSDP_CHECK(as.dim() == dim, "big_dot_exp: constraint dimension mismatch");
  PSDP_CHECK(kappa >= 0, "big_dot_exp: kappa must be non-negative");
  PSDP_CHECK(options.eps > 0 && options.eps < 1,
             "big_dot_exp: eps must lie in (0,1)");
  PSDP_CHECK(options.block_size >= 0,
             "big_dot_exp: block_size must be non-negative");

  // Per-call plan override: the workspace-held plan (a shared workspace may
  // pin one for every solve that borrows it) yields to an explicit
  // options.kernel_plan *for this call only* -- the RAII guard restores the
  // pinned pointer on every exit path, so the override is never sticky and
  // a caller's stack-local plan never outlives the call inside the
  // workspace. Pointer copies only: the zero-allocation steady state is
  // preserved.
  struct PlanOverride {
    sparse::FactorizedSet::BlockWorkspace* factor;
    const sparse::KernelPlan* saved;
    PlanOverride(sparse::FactorizedSet::BlockWorkspace& f,
                 const sparse::KernelPlan* plan)
        : factor(&f), saved(f.plan) {
      if (plan != nullptr) f.plan = plan;
    }
    ~PlanOverride() { factor->plan = saved; }
  } plan_override(workspace.factor, options.kernel_plan);

  // Error budget: the Taylor truncation contributes up to 2*eps_t relative
  // error to ||p_hat Q||^2 (p_hat and exp commute, both PSD), the sketch
  // contributes +-eps_jl; split the target eps between them.
  const Real eps_taylor = options.eps / 4;
  const Real eps_jl = options.eps / 2;

  // Lemma 4.2 degree for B = Phi/2 (norm kappa/2); Theorem 4.1 uses
  // kappa >= max(1, ||Phi||_2), enforce the max(1, .) here.
  const Real kappa_half = std::max<Real>(1, kappa) / 2;
  result.taylor_degree =
      options.taylor_degree_override > 0
          ? options.taylor_degree_override
          : linalg::taylor_exp_degree(kappa_half, eps_taylor);

  // The identity "sketch" is exact and cheaper whenever the JL formula asks
  // for at least m rows (small instances); an explicit override is honored
  // verbatim so experiments can study sketching at any row count.
  if (options.sketch_rows_override > 0) {
    result.exact_sketch = false;
    result.sketch_rows = options.sketch_rows_override;
  } else {
    const Index jl = rand::jl_rows(dim, eps_jl, options.delta);
    result.exact_sketch = jl >= dim;
    result.sketch_rows = result.exact_sketch ? dim : jl;
  }
  const Index r = result.sketch_rows;

  Index block = options.block_size > 0
                    ? options.block_size
                    : std::min<Index>(kDefaultBlockSize, r);
  block = std::min(block, r);
  result.block_size = block;
  result.fused = false;

  // The float32 gate (see BigDotExpOptions::panel_precision): every leg
  // must hold or the call silently runs the double path -- and records
  // that it did, so callers and benches can tell which precision a result
  // carries.
  const bool float_panels =
      options.panel_precision == PanelPrecision::kFloat32 &&
      phi_block_f != nullptr && static_cast<bool>(*phi_block_f) &&
      block > 1 && options.fuse_dots &&
      options.eps >= options.float_panel_min_eps;
  result.panel_precision =
      float_panels ? PanelPrecision::kFloat32 : PanelPrecision::kDouble;

  result.dots.resize(as.size());
  if (block == 1) {
    // Reference path: r independent Taylor matvec chains, r x m layout.
    const std::vector<Real> s = sketch_times_exp_half(
        phi, dim, r, result.taylor_degree, options.seed, result.exact_sketch);
    // Tr[exp(Phi)] = ||exp(Phi/2)||_F^2 ~ ||S||_F^2. (The reference dots
    // sweep below writes each dots_i from serial per-constraint work, so
    // this trace reduction is the path's only pool-width-sensitive fold.)
    result.trace_exp = shards.sum(
        r * dim, [&](Index k) { return sq(s[static_cast<std::size_t>(k)]); });
    accumulate_dots_reference(s, dim, r, as, result.dots);
    // Critical path of the r concurrent Taylor chains: one chain of k-1
    // matvecs (worker-side depth charges are dropped by the meter; the
    // blocked path's chains charge their own depth from the driver).
    par::CostMeter::add_depth(
        static_cast<std::uint64_t>(result.taylor_degree - 1) *
        (par::reduction_depth(dim) + 1));
  } else if (options.fuse_dots) {
    // Fused blocked path: dots and trace accumulate per panel, right after
    // the panel's Taylor sweep -- no m x r buffer, no second pass over S.
    result.fused = true;
    result.dots.fill(0);
    if (float_panels) {
      result.trace_exp = sketch_exp_dots_fused_f(
          *phi_block_f, dim, r, result.taylor_degree, options.seed,
          result.exact_sketch, block, as, shards, workspace, result.dots);
    } else {
      result.trace_exp = sketch_exp_dots_fused(
          phi_block, dim, r, result.taylor_degree, options.seed,
          result.exact_sketch, block, as, shards, workspace, result.dots);
    }
  } else {
    // Blocked path: panels of `block` sketch rows share each Phi traversal.
    const std::vector<Real> st = sketch_times_exp_half_blocked(
        phi_block, dim, r, result.taylor_degree, options.seed,
        result.exact_sketch, block, workspace);
    result.trace_exp = shards.sum(
        r * dim, [&](Index k) { return sq(st[static_cast<std::size_t>(k)]); });
    accumulate_dots_blocked(st, r, as, result.dots);
  }

  // Frobenius reduction for the trace; the Phi applications, Taylor panel
  // arithmetic, sketch generation, and dots streaming charge themselves.
  // The fused path has already charged its per-panel reduction depth, so
  // only the two separate final passes of the unfused layouts add depth
  // here.
  par::CostMeter::add_work(static_cast<std::uint64_t>(2 * r * dim));
  if (!result.fused) {
    par::CostMeter::add_depth(par::reduction_depth(dim) +
                              par::reduction_depth(as.size()));
  }
}

}  // namespace

void big_dot_exp(const linalg::SymmetricOp& phi,
                 const linalg::BlockOp& phi_block, Index dim, Real kappa,
                 const sparse::FactorizedSet& as,
                 const BigDotExpOptions& options, SolverWorkspace& workspace,
                 BigDotExpResult& result,
                 const linalg::BlockOpF* phi_block_f) {
  big_dot_exp_impl(phi, phi_block, dim, kappa, as, ShardSpan{}, options,
                   workspace, result, phi_block_f);
}

void big_dot_exp(const linalg::SymmetricOp& phi,
                 const linalg::BlockOp& phi_block, Index dim, Real kappa,
                 const sparse::ShardedFactorizedSet& as,
                 const BigDotExpOptions& options, SolverWorkspace& workspace,
                 BigDotExpResult& result,
                 const linalg::BlockOpF* phi_block_f) {
  // A single-shard partition hands ShardSpan the trivial {0, n} offsets,
  // which it treats as "no partition" -- the legacy path, bit-identical.
  big_dot_exp_impl(phi, phi_block, dim, kappa, as.set(),
                   ShardSpan{as.shard_offsets()}, options, workspace, result,
                   phi_block_f);
}

BigDotExpResult big_dot_exp(const linalg::SymmetricOp& phi,
                            const linalg::BlockOp& phi_block, Index dim,
                            Real kappa, const sparse::FactorizedSet& as,
                            const BigDotExpOptions& options) {
  SolverWorkspace workspace;
  BigDotExpResult result;
  big_dot_exp(phi, phi_block, dim, kappa, as, options, workspace, result);
  return result;
}

BigDotExpResult big_dot_exp(const linalg::SymmetricOp& phi, Index dim,
                            Real kappa, const sparse::FactorizedSet& as,
                            const BigDotExpOptions& options) {
  // No native panel kernel: auto block size resolves to the reference path
  // (column-by-column blocking would amortize nothing); an explicit
  // block_size > 1 still exercises the blocked code via the adapter.
  BigDotExpOptions resolved = options;
  if (resolved.block_size == 0) resolved.block_size = 1;
  return big_dot_exp(phi, linalg::block_op_from_symmetric(phi, dim), dim,
                     kappa, as, resolved);
}

BigDotExpResult big_dot_exp(const sparse::Csr& phi, Real kappa,
                            const sparse::FactorizedSet& as,
                            const BigDotExpOptions& options) {
  PSDP_CHECK(phi.rows() == phi.cols(), "big_dot_exp: Phi must be square");
  const linalg::SymmetricOp op = [&phi](const Vector& x, Vector& y) {
    phi.apply(x, y);
  };
  const linalg::BlockOp block_op = [&phi](const linalg::Matrix& x,
                                          linalg::Matrix& y) {
    phi.apply_block(x, y);
  };
  Real k = kappa;
  if (k <= 0) {
    k = linalg::lambda_max_upper_bound(op, phi.rows());
  }
  return big_dot_exp(op, block_op, phi.rows(), k, as, options);
}

}  // namespace psdp::core
