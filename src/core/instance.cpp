#include "core/instance.hpp"

#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/matfunc.hpp"

namespace psdp::core {

PackingInstance::PackingInstance(std::vector<Matrix> constraints)
    : constraints_(std::move(constraints)) {
  PSDP_CHECK(!constraints_.empty(), "packing instance must have constraints");
  dim_ = constraints_[0].rows();
  traces_.reserve(constraints_.size());
  for (const Matrix& a : constraints_) {
    PSDP_CHECK(a.rows() == dim_ && a.cols() == dim_,
               "packing instance: inconsistent constraint dimensions");
    traces_.push_back(linalg::trace(a));
  }
}

const Matrix& PackingInstance::operator[](Index i) const {
  PSDP_CHECK(i >= 0 && i < size(), "packing instance: index out of range");
  return constraints_[static_cast<std::size_t>(i)];
}

Real PackingInstance::constraint_trace(Index i) const {
  PSDP_CHECK(i >= 0 && i < size(), "packing instance: index out of range");
  return traces_[static_cast<std::size_t>(i)];
}

PackingInstance PackingInstance::scaled(Real s) const {
  PSDP_CHECK(s > 0, "packing scale must be positive");
  std::vector<Matrix> scaled = constraints_;
  for (Matrix& a : scaled) a.scale(s);
  return PackingInstance(std::move(scaled));
}

void PackingInstance::validate(bool check_psd) const {
  for (Index i = 0; i < size(); ++i) {
    const Matrix& a = (*this)[i];
    PSDP_CHECK(linalg::all_finite(a),
               str("constraint ", i, " has non-finite entries"));
    PSDP_CHECK(linalg::is_symmetric(a, 1e-8),
               str("constraint ", i, " is not symmetric"));
    PSDP_CHECK(constraint_trace(i) > 0,
               str("constraint ", i, " is zero (trace 0); drop it instead"));
    if (check_psd) {
      PSDP_CHECK(linalg::is_psd(a, 1e-8),
                 str("constraint ", i, " is not positive semidefinite"));
    }
  }
}

FactorizedPackingInstance::FactorizedPackingInstance(
    sparse::FactorizedSet constraints)
    : FactorizedPackingInstance(
          sparse::ShardedFactorizedSet(std::move(constraints))) {}

FactorizedPackingInstance::FactorizedPackingInstance(
    sparse::FactorizedSet constraints, Index shards,
    const sparse::TransposePlanOptions& plan_options)
    : FactorizedPackingInstance(sparse::ShardedFactorizedSet(
          std::move(constraints), shards, plan_options)) {}

FactorizedPackingInstance::FactorizedPackingInstance(
    sparse::ShardedFactorizedSet constraints)
    : sharded_(std::move(constraints)) {
  traces_.reserve(static_cast<std::size_t>(sharded_.size()));
  for (Index i = 0; i < sharded_.size(); ++i) {
    traces_.push_back(sharded_[i].trace());
    PSDP_CHECK(traces_.back() > 0,
               str("factorized constraint ", i, " is zero; drop it instead"));
  }
}

Real FactorizedPackingInstance::constraint_trace(Index i) const {
  PSDP_CHECK(i >= 0 && i < size(), "factorized instance: index out of range");
  return traces_[static_cast<std::size_t>(i)];
}

FactorizedPackingInstance FactorizedPackingInstance::scaled(Real s) const {
  PSDP_CHECK(s > 0, "packing scale must be positive");
  // FactorizedPsd::scaled (inside ShardedFactorizedSet::scaled) carries the
  // cached transpose index and lambda_max bound along, so a binary search's
  // per-probe rescale does not re-run the per-factor setup; the shard
  // boundaries travel too.
  return FactorizedPackingInstance(sharded_.scaled(s));
}

PackingInstance FactorizedPackingInstance::to_dense() const {
  std::vector<Matrix> constraints;
  constraints.reserve(static_cast<std::size_t>(size()));
  for (Index i = 0; i < size(); ++i) {
    constraints.push_back(sharded_[i].to_dense());
  }
  return PackingInstance(std::move(constraints));
}

void CoveringProblem::validate(bool check_psd) const {
  PSDP_CHECK(objective.square(), "covering: objective must be square");
  PSDP_CHECK(!constraints.empty(), "covering: no constraints");
  PSDP_CHECK(rhs.size() == size(), "covering: rhs length mismatch");
  PSDP_CHECK(linalg::is_symmetric(objective, 1e-8),
             "covering: objective is not symmetric");
  for (Index i = 0; i < size(); ++i) {
    const Matrix& a = constraints[static_cast<std::size_t>(i)];
    PSDP_CHECK(a.rows() == dim() && a.cols() == dim(),
               str("covering: constraint ", i, " dimension mismatch"));
    PSDP_CHECK(linalg::is_symmetric(a, 1e-8),
               str("covering: constraint ", i, " is not symmetric"));
    PSDP_CHECK(rhs[i] >= 0, str("covering: b_", i, " is negative"));
    if (check_psd) {
      PSDP_CHECK(linalg::is_psd(a, 1e-8),
                 str("covering: constraint ", i, " is not PSD"));
    }
  }
  if (check_psd) {
    PSDP_CHECK(linalg::is_psd(objective, 1e-8),
               "covering: objective is not PSD");
  }
}

NormalizedProblem normalize(const CoveringProblem& problem, Real rank_tol) {
  problem.validate(/*check_psd=*/true);
  NormalizedProblem result;
  result.c_inv_sqrt = linalg::inv_sqrt_psd(problem.objective, rank_tol);

  // Support check: a constraint with mass outside range(C) has an
  // unbounded-toward-zero dual variable; the paper assumes it away, we
  // detect it. A_i lives on the support of C iff projecting A_i onto the
  // null space of C leaves nothing: || A_i - P A_i P ||_F ~ 0 where
  // P = C^{1/2} C^{-1/2} is the support projector.
  const Matrix support =
      linalg::gemm(linalg::sqrt_psd(problem.objective, rank_tol),
                   result.c_inv_sqrt);

  std::vector<Matrix> packing;
  for (Index i = 0; i < problem.size(); ++i) {
    if (problem.rhs[i] == 0) continue;  // trivially satisfied, drop
    const Matrix& a = problem.constraints[static_cast<std::size_t>(i)];
    const Matrix projected =
        linalg::gemm(support, linalg::gemm(a, support));
    const Real fro = linalg::frobenius_norm(a);
    PSDP_CHECK(
        linalg::max_abs_diff(projected, a) <=
            1e-6 * std::max(fro, Real{1}),
        str("constraint ", i,
            " is not supported on the objective C; its dual variable is 0 "
            "and it must be removed (paper Appendix A assumption)"));
    Matrix b = linalg::gemm(result.c_inv_sqrt,
                            linalg::gemm(a, result.c_inv_sqrt));
    b.symmetrize();
    b.scale(1 / problem.rhs[i]);
    packing.push_back(std::move(b));
    result.kept.push_back(i);
  }
  PSDP_CHECK(!packing.empty(),
             "normalize: all constraints dropped (all b_i are zero)");
  result.packing = PackingInstance(std::move(packing));
  return result;
}

Matrix denormalize_primal(const NormalizedProblem& normalized,
                          const Matrix& z) {
  Matrix y = linalg::gemm(normalized.c_inv_sqrt,
                          linalg::gemm(z, normalized.c_inv_sqrt));
  y.symmetrize();
  return y;
}

TraceBoundResult bound_traces(const PackingInstance& instance,
                              Real cap_factor) {
  const Index n = instance.size();
  if (cap_factor <= 0) {
    cap_factor = static_cast<Real>(n) * static_cast<Real>(n) *
                 static_cast<Real>(n);
  }
  Real min_trace = instance.constraint_trace(0);
  for (Index i = 1; i < n; ++i) {
    min_trace = std::min(min_trace, instance.constraint_trace(i));
  }
  const Real cap = cap_factor * min_trace;

  TraceBoundResult result;
  std::vector<Matrix> kept;
  for (Index i = 0; i < n; ++i) {
    if (instance.constraint_trace(i) <= cap) {
      kept.push_back(instance[i]);
      result.kept.push_back(i);
    } else {
      ++result.dropped;
    }
  }
  PSDP_ASSERT(!kept.empty());  // the min-trace constraint always survives
  result.instance = PackingInstance(std::move(kept));
  return result;
}

}  // namespace psdp::core
