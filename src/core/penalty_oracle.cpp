#include "core/penalty_oracle.hpp"

#include <cmath>
#include <utility>

#include "linalg/eig.hpp"
#include "linalg/expm.hpp"
#include "linalg/lanczos.hpp"
#include "linalg/tridiag_eig.hpp"
#include "par/parallel.hpp"
#include "rand/rng.hpp"
#include "util/log.hpp"

namespace psdp::core {

void penalty_dots(const PackingInstance& instance, const Matrix& w,
                  Vector& dots) {
  const Index m = instance.dim();
  // Keep small per-constraint work serial: below this grain the fork-join
  // overhead dwarfs an m^2 dot product.
  const Index grain = std::max<Index>(1, 16384 / (m * m + 1));
  par::parallel_for(0, instance.size(), [&](Index i) {
    dots[i] = linalg::frobenius_dot(instance[i], w);
  }, grain);
}

// ------------------------------------------------------------------ dense --

DenseEigOracle::DenseEigOracle(const PackingInstance& instance)
    : instance_(&instance),
      psi_(instance.dim(), instance.dim()),
      x_cache_(instance.size()) {}

void DenseEigOracle::sync(const Vector& x) {
  PSDP_CHECK(x.size() == size(), "DenseEigOracle: weight size mismatch");
  for (Index i = 0; i < size(); ++i) {
    const Real delta = x[i] - x_cache_[i];
    if (delta != 0) psi_.add_scaled((*instance_)[i], delta);
  }
  x_cache_ = x;
}

void DenseEigOracle::compute(const Vector& x, std::uint64_t /*round*/,
                             PenaltyBatch& out) {
  sync(x);
  const linalg::EigResult eig = linalg::sym_eig(psi_);
  w_ = linalg::expm_from_eig(eig);
  out.trace = linalg::trace(w_);
  out.lambda_max_psi = eig.eigenvalues[0];
  if (out.dots.size() != size()) out.dots = Vector(size());
  penalty_dots(*instance_, w_, out.dots);
  out.weight = &w_;
  out.weight_vec = nullptr;
}

Real DenseEigOracle::lambda_max(const Vector& weights) {
  PSDP_CHECK(weights.size() == size(),
             "DenseEigOracle: weight size mismatch");
  // The common call is at the oracle's own (monotonically grown) weight
  // trajectory -- the solve epilogues. There a copy of the cached Psi
  // needs only PSD-term top-ups, far cheaper than a fresh O(n m^2)
  // assembly. The cache itself is never repointed here (a probe vector
  // like bucketed's width step must not rebase it -- the way back would
  // be cancelling subtractions); any shrinking coordinate falls through
  // to the scratch build.
  bool forward = true;
  for (Index i = 0; i < size(); ++i) {
    if (weights[i] < x_cache_[i]) {
      forward = false;
      break;
    }
  }
  if (forward) {
    Matrix sum = psi_;
    for (Index i = 0; i < size(); ++i) {
      const Real delta = weights[i] - x_cache_[i];
      if (delta != 0) sum.add_scaled((*instance_)[i], delta);
    }
    return linalg::lambda_max_exact(sum);
  }
  Matrix sum(dim(), dim());
  for (Index i = 0; i < size(); ++i) {
    if (weights[i] != 0) sum.add_scaled((*instance_)[i], weights[i]);
  }
  return linalg::lambda_max_exact(sum);
}

// --------------------------------------------------------------- sketched --

// Rebase cadence of the incremental bounds: a from-scratch O(n) recompute
// every rebase_interval_ rounds caps float drift without showing up in the
// per-round cost. bound_flux_ratio_ is the cancellation guard: rebase early
// once the absolute delta mass folded in since the last rebase exceeds this
// many times the current sum. At the defaults (64, 8) the rounding residue
// is bounded by (rounds x eps x flux) <= 64 * 2.2e-16 * 8 * trace
// ~ 1.1e-13 * trace, so the tracked values honor the documented 1e-12
// agreement with from-scratch sums even on adversarial grow-then-collapse
// trajectories. Monotone trajectories keep flux == trace (ratio 1) and
// never trigger early; when the guard does fire, the rebase is only the
// O(n) sum the pre-incremental oracle paid every round. Both knobs come
// from the tunable registry (`rebase_interval`, `bound_flux_ratio`),
// snapshotted at construction.

SketchedTaylorOracle::SketchedTaylorOracle(
    const FactorizedPackingInstance& instance,
    const SketchedOracleOptions& options)
    : instance_(&instance),
      dot_options_(options.dot_options),
      dot_eps_(options.dot_eps > 0 ? options.dot_eps : options.eps / 2),
      kappa_cap_(options.kappa_cap),
      x_work_(instance.size()),
      rebase_interval_(util::tunable_rebase_interval()),
      bound_flux_ratio_(util::tunable_bound_flux_ratio()),
      workspace_(options.workspace != nullptr ? options.workspace
                                              : &own_workspace_) {
  PSDP_CHECK(dot_eps_ > 0 && dot_eps_ < 1,
             "SketchedTaylorOracle: dot_eps must lie in (0,1)");
  dot_options_.eps = dot_eps_;
  // Psi as an implicit operator: Psi v = sum_i x_i (Q_i (Q_i^T v)), in both
  // matvec and panel form; the panel form draws its scratch from the shared
  // SolverWorkspace. Both closures read x_work_, so the oracle must stay
  // put (non-copyable by the base class).
  const sparse::FactorizedSet& set = instance.set();
  psi_op_ = [&set, this](const Vector& v, Vector& y) {
    set.weighted_apply(x_work_, v, y);
  };
  psi_block_op_ = [&set, this](const linalg::Matrix& v, linalg::Matrix& y) {
    set.weighted_apply_block(x_work_, v, y, workspace_->factor);
  };
  psi_block_op_f_ = [&set, this](const linalg::MatrixF& v,
                                 linalg::MatrixF& y) {
    set.weighted_apply_block_f(x_work_, v, y, workspace_->factor);
  };
}

Real SketchedTaylorOracle::constraint_lambda_max(Index i) const {
  PSDP_CHECK(i >= 0 && i < size(),
             "SketchedTaylorOracle: constraint index out of range");
  return (*instance_)[i].lambda_max_bound();
}

void SketchedTaylorOracle::sync_bounds(const Vector& x) {
  // Diff against the previous round's weights (x_work_ doubles as the
  // cache): only changed coordinates touch the tracked sums, and shrinking
  // or zeroed entries subtract exactly what they once added.
  for (Index i = 0; i < size(); ++i) {
    const Real delta = x[i] - x_work_[i];
    if (delta != 0) {
      const Real trace_term = delta * instance_->constraint_trace(i);
      trace_psi_ += trace_term;
      bound_flux_ += std::abs(trace_term);
      lambda_bound_ += delta * (*instance_)[i].lambda_max_bound();
      x_work_[i] = x[i];
    }
  }
  // Rebase -- periodically, on sign artifacts, and whenever cancellation
  // has churned far more mass through the sums than they currently hold: a
  // from-scratch sum pins the incremental values back onto the exact ones,
  // so drift never accumulates past a few rounds' worth of rounding.
  if (++rounds_since_rebase_ >= rebase_interval_ || trace_psi_ < 0 ||
      lambda_bound_ < 0 || bound_flux_ > bound_flux_ratio_ * trace_psi_) {
    const sparse::ShardedFactorizedSet& sharded = instance_->sharded();
    if (sharded.shard_count() > 1) {
      // Sharded rebase: each shard folds its constraints serially (in
      // parallel across shards), then the partials merge in shard order --
      // a fixed-order reduction whose bits depend on the partition, never
      // the pool width, matching the sharded dots sweep's contract. The
      // K = 1 branch below is the verbatim legacy loop (bit-identity).
      const Index k_shards = sharded.shard_count();
      shard_trace_partial_.assign(static_cast<std::size_t>(k_shards), 0);
      shard_lambda_partial_.assign(static_cast<std::size_t>(k_shards), 0);
      par::parallel_for(0, k_shards, [&](Index k) {
        Real trace_part = 0;
        Real lambda_part = 0;
        for (Index i = sharded.shard_begin(k); i < sharded.shard_end(k);
             ++i) {
          trace_part += x_work_[i] * instance_->constraint_trace(i);
          lambda_part += x_work_[i] * (*instance_)[i].lambda_max_bound();
        }
        shard_trace_partial_[static_cast<std::size_t>(k)] = trace_part;
        shard_lambda_partial_[static_cast<std::size_t>(k)] = lambda_part;
      }, /*grain=*/1);
      trace_psi_ = 0;
      lambda_bound_ = 0;
      for (Index k = 0; k < k_shards; ++k) {
        trace_psi_ += shard_trace_partial_[static_cast<std::size_t>(k)];
        lambda_bound_ += shard_lambda_partial_[static_cast<std::size_t>(k)];
      }
    } else {
      trace_psi_ = 0;
      lambda_bound_ = 0;
      for (Index i = 0; i < size(); ++i) {
        trace_psi_ += x_work_[i] * instance_->constraint_trace(i);
        lambda_bound_ += x_work_[i] * (*instance_)[i].lambda_max_bound();
      }
    }
    bound_flux_ = trace_psi_;
    rounds_since_rebase_ = 0;
  }
}

void SketchedTaylorOracle::compute(const Vector& x, std::uint64_t round,
                                   PenaltyBatch& out) {
  PSDP_CHECK(x.size() == size(),
             "SketchedTaylorOracle: weight size mismatch");
  sync_bounds(x);
  // kappa: the caller's a-priori cap (Lemma 3.2 for the decision solvers --
  // exactly why the iteration is width-independent) against the tracked
  // runtime bound min(Tr[Psi], sum_i x_i lambda_max(A_i)). The min is the
  // clamp guaranteeing the tracked-lambda path is never looser than the
  // always-sound trace bound; both dominate lambda_max(Psi), so Lemma 4.2's
  // degree stays sufficient.
  const Real kappa_runtime =
      std::max<Real>(0, std::min(trace_psi_, lambda_bound_));
  const Real kappa =
      kappa_cap_ > 0 ? std::min(kappa_cap_, kappa_runtime) : kappa_runtime;
  // Fresh sketch per round: independent noise, per the union bound.
  BigDotExpOptions round_options = dot_options_;
  round_options.seed = rand::stream_seed(dot_options_.seed, round);
  // Routed through the sharded overload: one shard is byte-for-byte the
  // legacy path; K > 1 engages the deterministic per-shard sweeps.
  big_dot_exp(psi_op_, psi_block_op_, dim(), kappa, instance_->sharded(),
              round_options, *workspace_, result_, &psi_block_op_f_);
  // Hand the caller the fresh dots by swapping storage: the batch keeps a
  // same-sized buffer across rounds, so neither side reallocates.
  std::swap(out.dots, result_.dots);
  out.trace = result_.trace_exp;
  out.lambda_max_psi = 0;
  out.weight = nullptr;
  out.weight_vec = nullptr;
}

Real SketchedTaylorOracle::lambda_max(const Vector& weights) {
  PSDP_CHECK(weights.size() == size(),
             "SketchedTaylorOracle: weight size mismatch");
  // Lanczos handles the flat spectra Lemma 3.2 induces far better than
  // power iteration; ritz + residual is the certified upper bound, and a
  // further 0.1% inflation absorbs the (improbable) unlucky-start case.
  const sparse::FactorizedSet& set = instance_->set();
  const linalg::SymmetricOp op = [&set, &weights](const Vector& v,
                                                  Vector& y) {
    set.weighted_apply(weights, v, y);
  };
  linalg::LanczosOptions options;
  options.tol = 1e-10;
  const linalg::LanczosResult r =
      linalg::lanczos_lambda_max(op, dim(), options);
  return r.lambda_max > 0 ? (r.lambda_max + r.residual) * 1.001 : 0;
}

// ----------------------------------------------------------------- scalar --

ScalarSoftmaxOracle::ScalarSoftmaxOracle(const Matrix& p)
    : p_(&p), psi_(p.rows()), x_cache_(p.cols()) {
  PSDP_CHECK(p.rows() >= 1 && p.cols() >= 1,
             "ScalarSoftmaxOracle: empty matrix");
  column_sums_.assign(static_cast<std::size_t>(p.cols()), 0);
  for (Index j = 0; j < p.rows(); ++j) {
    for (Index i = 0; i < p.cols(); ++i) {
      PSDP_CHECK(p(j, i) >= 0 && std::isfinite(p(j, i)),
                 str("ScalarSoftmaxOracle: bad entry at (", j, ",", i, ")"));
      column_sums_[static_cast<std::size_t>(i)] += p(j, i);
    }
  }
}

void ScalarSoftmaxOracle::sync(const Vector& x) {
  PSDP_CHECK(x.size() == size(),
             "ScalarSoftmaxOracle: weight size mismatch");
  const Matrix& p = *p_;
  for (Index i = 0; i < size(); ++i) {
    const Real delta = x[i] - x_cache_[i];
    if (delta == 0) continue;
    for (Index j = 0; j < dim(); ++j) psi_[j] += delta * p(j, i);
  }
  x_cache_ = x;
}

void ScalarSoftmaxOracle::compute(const Vector& x, std::uint64_t /*round*/,
                                  PenaltyBatch& out) {
  sync(x);
  const Matrix& p = *p_;
  const Index l = dim();
  const Index n = size();
  // Scalar soft-max weights, shifted by max_j Psi_j for overflow safety
  // (the selection rule and the primal average are scale-invariant).
  const Real shift = linalg::max_entry(psi_);
  if (w_.size() != l) w_ = Vector(l);
  Real tr_w = 0;
  for (Index j = 0; j < l; ++j) {
    w_[j] = std::exp(psi_[j] - shift);
    tr_w += w_[j];
  }
  out.trace = tr_w;
  out.lambda_max_psi = shift;
  // dots_i = (P^T w)_i = exp-penalty of variable i.
  if (out.dots.size() != n) out.dots = Vector(n);
  for (Index i = 0; i < n; ++i) out.dots[i] = 0;
  for (Index j = 0; j < l; ++j) {
    const Real wj = w_[j];
    if (wj == 0) continue;
    for (Index i = 0; i < n; ++i) out.dots[i] += wj * p(j, i);
  }
  out.weight = nullptr;
  out.weight_vec = &w_;
}

Real ScalarSoftmaxOracle::lambda_max(const Vector& weights) {
  PSDP_CHECK(weights.size() == size(),
             "ScalarSoftmaxOracle: weight size mismatch");
  // Top up a copy of the cached Psi = P x (O(l) per changed coordinate);
  // the cache itself stays pinned to the last compute()'s weights.
  const Matrix& p = *p_;
  Vector psi = psi_;
  for (Index i = 0; i < size(); ++i) {
    const Real delta = weights[i] - x_cache_[i];
    if (delta == 0) continue;
    for (Index j = 0; j < dim(); ++j) psi[j] += delta * p(j, i);
  }
  return linalg::max_entry(psi);
}

}  // namespace psdp::core
