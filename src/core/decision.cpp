#include "core/decision.hpp"

#include <cmath>
#include <memory>

#include "linalg/eig.hpp"
#include "linalg/tridiag_eig.hpp"
#include "linalg/expm.hpp"
#include "linalg/lanczos.hpp"
#include "par/parallel.hpp"
#include "rand/rng.hpp"
#include "util/log.hpp"

namespace psdp::core {

AlgorithmConstants algorithm_constants(Index n, Real eps) {
  PSDP_CHECK(n >= 1, "algorithm_constants: n must be positive");
  PSDP_CHECK(eps > 0 && eps < 1, "algorithm_constants: eps must lie in (0,1)");
  const Real ln_n = std::log(static_cast<Real>(std::max<Index>(n, 2)));
  AlgorithmConstants c;
  c.k_cap = (1 + ln_n) / eps;
  c.alpha = eps / (c.k_cap * (1 + 10 * eps));
  c.r_limit = static_cast<Index>(std::ceil(32 * ln_n / (eps * c.alpha)));
  c.spectrum_bound = (1 + 10 * eps) * c.k_cap;
  return c;
}

namespace {

/// State shared by both implementations: the weight vector, its running
/// l1 norm, and the primal averaging accumulators.
struct SolverState {
  Vector x;            ///< current weights
  Real x_norm1 = 0;    ///< ||x||_1, maintained incrementally
  Vector primal_dots;  ///< running sum of (W . A_i)/Tr W
  Real primal_trace = 0;  ///< running sum of Tr[P] = 1 per iteration
  Real min_primal_sum = 0;  ///< min_i primal_dots[i] after the last update
  Index t = 0;

  /// True once the running primal average Y(t) = avg P already satisfies
  /// min_i A_i . Y >= 1, i.e. it is a valid primal certificate.
  bool primal_certified() const { return t > 0 && min_primal_sum >= t; }
};

/// x_i(0) = 1/(n Tr[A_i]); also primes the accumulators.
template <typename Inst>
SolverState initial_state(const Inst& instance) {
  const Index n = instance.size();
  PSDP_CHECK(n >= 1, "decisionPSDP: instance has no constraints");
  SolverState state;
  state.x = Vector(n);
  for (Index i = 0; i < n; ++i) {
    const Real tr = instance.constraint_trace(i);
    PSDP_CHECK(tr > 0 && std::isfinite(tr),
               str("decisionPSDP: constraint ", i,
                   " has non-positive or non-finite trace ", tr,
                   "; zero constraints must be dropped by the caller"));
    state.x[i] = 1 / (static_cast<Real>(n) * tr);
    state.x_norm1 += state.x[i];
  }
  state.primal_dots = Vector(n);
  return state;
}

/// The coordinate update shared by both paths: given this iteration's dots
/// d_i ~ W . A_i and trace tr_w ~ Tr W, grow every coordinate in
/// B = { i : d_i <= (1+eps) tr_w } by (1+alpha); accumulates the primal
/// average and returns |B|.
Index apply_update(SolverState& state, const Vector& dots, Real tr_w,
                   Real eps, Real alpha) {
  const Index n = state.x.size();
  PSDP_NUMERIC_CHECK(tr_w > 0 && std::isfinite(tr_w),
                     "decisionPSDP: Tr[W] is not positive finite");
  const Real threshold = (1 + eps) * tr_w;
  Index updated = 0;
  Real norm_gain = 0;
  Real min_sum = std::numeric_limits<Real>::infinity();
  for (Index i = 0; i < n; ++i) {
    state.primal_dots[i] += dots[i] / tr_w;
    min_sum = std::min(min_sum, state.primal_dots[i]);
    if (dots[i] <= threshold) {
      norm_gain += alpha * state.x[i];
      state.x[i] *= (1 + alpha);
      ++updated;
    }
  }
  state.primal_trace += 1;  // Tr[P(t)] = 1 by construction (3.3)
  state.x_norm1 += norm_gain;
  state.min_primal_sum = min_sum;
  return updated;
}

/// Assemble the shared parts of a DecisionResult on exit. `psi_lambda_max`
/// must be a valid upper bound on lambda_max of the final Psi.
DecisionResult finish(SolverState&& state, const AlgorithmConstants& c,
                      Real psi_lambda_max) {
  DecisionResult result;
  result.iterations = state.t;
  result.constants = c;
  const Real t_count = std::max<Real>(1, static_cast<Real>(state.t));
  result.primal_dots = std::move(state.primal_dots);
  result.primal_dots.scale(1 / t_count);
  result.primal_trace = state.primal_trace / t_count;
  result.outcome = state.x_norm1 > c.k_cap ? DecisionOutcome::kDual
                                           : DecisionOutcome::kPrimal;
  result.psi_lambda_max = psi_lambda_max;
  // x_hat = x / ((1+10 eps) K); Lemma 3.2 guarantees feasibility, and on the
  // dual exit ||x_hat||_1 >= 1 - 10 eps via (3.4). The tight variant uses
  // the measured norm instead of the worst case.
  result.dual_x_tight = state.x;
  if (psi_lambda_max > 0) {
    result.dual_x_tight.scale(1 / psi_lambda_max);
  } else {
    result.dual_x_tight.scale(1 / c.spectrum_bound);
  }
  result.dual_x = std::move(state.x);
  result.dual_x.scale(1 / c.spectrum_bound);
  return result;
}

}  // namespace

DecisionResult decision_dense(const PackingInstance& instance,
                              const DecisionOptions& options) {
  const Index n = instance.size();
  const Index m = instance.dim();
  const Real eps = options.eps;
  const AlgorithmConstants c = algorithm_constants(n, eps);
  const Index r_limit = options.max_iterations_override > 0
                            ? options.max_iterations_override
                            : c.r_limit;

  SolverState state = initial_state(instance);

  // Psi = sum_i x_i A_i, maintained incrementally (all updates add PSD
  // terms, so there is no cancellation to cause drift).
  Matrix psi(m, m);
  for (Index i = 0; i < n; ++i) psi.add_scaled(instance[i], state.x[i]);

  Matrix y_sum(m, m);  // running sum of P(t) = W/Tr W
  Vector dots(n);
  std::vector<IterationStat> stats_local;

  // Keep small per-constraint work serial: below this grain the fork-join
  // overhead dwarfs an m^2 dot product.
  const Index dots_grain = std::max<Index>(1, 16384 / (m * m + 1));

  PSDP_CHECK(options.exp_stride >= 1, "exp_stride must be at least 1");
  linalg::EigResult eig;
  Matrix w;
  Real tr_w = 0;

  while (state.x_norm1 <= c.k_cap && state.t < r_limit &&
         !(options.early_primal_exit && state.primal_certified())) {
    ++state.t;
    if ((state.t - 1) % options.exp_stride == 0) {
      // Refresh the exponential (every iteration in paper-faithful mode).
      eig = linalg::sym_eig(psi);
      w = linalg::expm_from_eig(eig);
      tr_w = linalg::trace(w);
      par::parallel_for(0, n, [&](Index i) {
        dots[i] = linalg::frobenius_dot(instance[i], w);
      }, dots_grain);
    }

    const Vector x_before = state.x;
    const Index updated = apply_update(state, dots, tr_w, eps, c.alpha);

    // Fold the step into Psi: Psi += alpha * sum_{i in B} x_i_old A_i.
    for (Index i = 0; i < n; ++i) {
      const Real delta = state.x[i] - x_before[i];
      if (delta != 0) psi.add_scaled(instance[i], delta);
    }

    y_sum.add_scaled(w, 1 / tr_w);

    if (options.track_trajectory) {
      IterationStat stat;
      stat.t = state.t;
      stat.trace_w = tr_w;
      // lambda_max of Psi(t-1) = the exponent of this iteration's W.
      stat.lambda_max_psi = eig.eigenvalues[0];
      stat.x_norm1 = state.x_norm1;
      stat.updated = updated;
      stats_local.push_back(stat);
    }

    PSDP_LOG(kDebug) << "dense iter " << state.t << " |x|=" << state.x_norm1
                     << " trW=" << tr_w << " |B|=" << updated;
  }

  // Exact lambda_max of the final Psi: one extra eigensolve, reused by the
  // measured-tight dual.
  const Real psi_lambda_max = linalg::lambda_max_exact(psi);
  DecisionResult result = finish(std::move(state), c, psi_lambda_max);
  result.trajectory = std::move(stats_local);
  if (result.iterations > 0) {
    result.primal_y = std::move(y_sum);
    result.primal_y.scale(1 / static_cast<Real>(result.iterations));
  } else {
    // Zero iterations (tiny override): fall back to the uniform certificate.
    result.primal_y = Matrix::identity(m);
    result.primal_y.scale(1 / static_cast<Real>(m));
    result.primal_trace = 1;
  }
  return result;
}

DecisionResult decision_factorized(const FactorizedPackingInstance& instance,
                                   const DecisionOptions& options) {
  const Index n = instance.size();
  const Index m = instance.dim();
  const Real eps = options.eps;
  const AlgorithmConstants c = algorithm_constants(n, eps);
  const Index r_limit = options.max_iterations_override > 0
                            ? options.max_iterations_override
                            : c.r_limit;

  SolverState state = initial_state(instance);
  std::vector<IterationStat> stats_local;

  BigDotExpOptions dot_options = options.dot_options;
  dot_options.eps = options.dot_eps > 0 ? options.dot_eps : eps / 2;

  // Psi as an implicit operator: Psi v = sum_i x_i (Q_i (Q_i^T v)).
  const sparse::FactorizedSet& set = instance.set();
  const linalg::SymmetricOp psi_op = [&set, &state](const Vector& v,
                                                    Vector& y) {
    set.weighted_apply(state.x, v, y);
  };
  // Panel form of Psi for the blocked bigDotExp path; the workspace panels
  // are allocated once and recycled across iterations.
  const auto psi_ws = std::make_shared<sparse::FactorizedSet::BlockWorkspace>();
  const linalg::BlockOp psi_block_op =
      [&set, &state, psi_ws](const linalg::Matrix& v, linalg::Matrix& y) {
        set.weighted_apply_block(state.x, v, y, *psi_ws);
      };

  while (state.x_norm1 <= c.k_cap && state.t < r_limit &&
         !(options.early_primal_exit && state.primal_certified())) {
    ++state.t;
    // Fresh sketch per iteration: independent noise, per the union bound.
    BigDotExpOptions iter_options = dot_options;
    iter_options.seed =
        rand::stream_seed(dot_options.seed, static_cast<std::uint64_t>(state.t));
    // kappa: the a-priori Lemma 3.2 bound caps it (this is exactly why the
    // iteration is width-independent); early iterations use the cheaper
    // runtime bound lambda_max(Psi) <= Tr[Psi] = sum_i x_i Tr[A_i].
    Real trace_psi = 0;
    for (Index i = 0; i < n; ++i) {
      trace_psi += state.x[i] * instance.constraint_trace(i);
    }
    const Real kappa = std::min(c.spectrum_bound, trace_psi);
    const BigDotExpResult dots =
        big_dot_exp(psi_op, psi_block_op, m, kappa, set, iter_options);

    const Index updated =
        apply_update(state, dots.dots, dots.trace_exp, eps, c.alpha);

    if (options.track_trajectory) {
      IterationStat stat;
      stat.t = state.t;
      stat.trace_w = dots.trace_exp;
      stat.x_norm1 = state.x_norm1;
      stat.updated = updated;
      stats_local.push_back(stat);
    }

    PSDP_LOG(kDebug) << "factorized iter " << state.t
                     << " |x|=" << state.x_norm1 << " trW~=" << dots.trace_exp
                     << " |B|=" << updated;
  }

  // Estimate lambda_max of the final Psi for the measured-tight dual.
  // Lanczos handles the flat spectrum Lemma 3.2 induces far better than
  // power iteration; ritz + residual is the certified upper bound, and a
  // further 0.1% inflation absorbs the (improbable) unlucky-start case.
  linalg::LanczosOptions lanczos_options;
  lanczos_options.tol = 1e-10;
  const linalg::LanczosResult lanczos =
      linalg::lanczos_lambda_max(psi_op, m, lanczos_options);
  const Real psi_lambda_max =
      lanczos.lambda_max > 0
          ? (lanczos.lambda_max + lanczos.residual) * 1.001
          : 0;
  DecisionResult result = finish(std::move(state), c, psi_lambda_max);
  result.trajectory = std::move(stats_local);
  // primal_y stays empty: the factorized path never forms an m x m matrix.
  // The certificate values A_i . Y are in primal_dots and Tr Y = 1.
  if (result.iterations == 0) result.primal_trace = 1;
  return result;
}

DecisionResult solve_decision(const PackingInstance& instance, Real eps) {
  PSDP_CHECK(eps > 0 && eps < 1, "solve_decision: eps must lie in (0,1)");
  DecisionOptions options;
  options.eps = eps / 10;  // Theorem 3.1's final rescaling
  return decision_dense(instance, options);
}

}  // namespace psdp::core
