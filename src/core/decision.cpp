#include "core/decision.hpp"

#include <cmath>

#include "core/penalty_oracle.hpp"
#include "core/solver_engine.hpp"
#include "util/log.hpp"

namespace psdp::core {

AlgorithmConstants algorithm_constants(Index n, Real eps) {
  PSDP_CHECK(n >= 1, "algorithm_constants: n must be positive");
  PSDP_CHECK(eps > 0 && eps < 1, "algorithm_constants: eps must lie in (0,1)");
  const Real ln_n = std::log(static_cast<Real>(std::max<Index>(n, 2)));
  AlgorithmConstants c;
  c.k_cap = (1 + ln_n) / eps;
  c.alpha = eps / (c.k_cap * (1 + 10 * eps));
  c.r_limit = static_cast<Index>(std::ceil(32 * ln_n / (eps * c.alpha)));
  c.spectrum_bound = (1 + 10 * eps) * c.k_cap;
  return c;
}

DecisionResult decision_dense(const PackingInstance& instance,
                              const DecisionOptions& options) {
  DenseEigOracle oracle(instance);
  EngineRun run = run_decision_loop(oracle, options);
  return finish_decision(std::move(run), oracle, /*dense_primal=*/true);
}

DecisionResult decision_factorized(const FactorizedPackingInstance& instance,
                                   const DecisionOptions& options) {
  SketchedOracleOptions oracle_options;
  oracle_options.eps = options.eps;
  oracle_options.dot_eps = options.dot_eps;
  oracle_options.dot_options = options.dot_options;
  oracle_options.workspace = options.workspace;
  // kappa: the a-priori Lemma 3.2 bound caps it (this is exactly why the
  // iteration is width-independent).
  oracle_options.kappa_cap =
      algorithm_constants(instance.size(), options.eps).spectrum_bound;
  SketchedTaylorOracle oracle(instance, oracle_options);
  EngineRun run = run_decision_loop(oracle, options);
  return finish_decision(std::move(run), oracle, /*dense_primal=*/false);
}

DecisionResult solve_decision(const PackingInstance& instance, Real eps) {
  PSDP_CHECK(eps > 0 && eps < 1, "solve_decision: eps must lie in (0,1)");
  DecisionOptions options;
  options.eps = eps / 10;  // Theorem 3.1's final rescaling
  return decision_dense(instance, options);
}

}  // namespace psdp::core
