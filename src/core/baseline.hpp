// Width-DEPENDENT baseline: the classical Arora-Kale-style MMW packing
// solver whose iteration count scales with the width
//     rho = max_i lambda_max(A_i).
//
// This is the comparator for the paper's headline claim. The pre-[JY11]
// algorithms ([AHK05, AK07] and the Plotkin-Shmoys-Tardos tradition) solve
// the same decision problem in O(rho log m / eps^2) iterations: the dual
// player runs matrix multiplicative weights with gains A_j / rho (scaling by
// rho is forced by the M <= I requirement of Theorem 2.1), the primal
// player best-responds with the constraint of least penalty. When rho grows
// -- e.g. one "needle" constraint with a huge eigenvalue -- the iteration
// count grows linearly, while Algorithm 3.1 stays flat. Bench E3 plots
// exactly this.
//
// The oracle: given P(t), pick j(t) = argmin_i A_i . P(t). If even the
// minimum exceeds (1 + eps), no distribution packs (by LP duality on the
// game value) and the average P is a primal certificate. Otherwise play
// gain A_{j(t)}/rho and give x one unit of mass on j(t). After
// T = ceil(rho ln(m) / eps^2) rounds, the regret bound turns the average
// play into a dual solution with value >= (1 - O(eps)).
#pragma once

#include "core/decision.hpp"
#include "core/instance.hpp"

namespace psdp::core {

struct BaselineOptions {
  Real eps = 0.1;
  /// Iteration override for experiments (0 = rho-dependent formula).
  Index max_iterations_override = 0;
  /// Width override when the caller has already computed it (0 = exact
  /// lambda_max per constraint via the dense eigensolver).
  Real width_override = 0;
};

struct BaselineResult {
  DecisionOutcome outcome = DecisionOutcome::kPrimal;
  Vector dual_x;     ///< dual solution (kDual), scaled feasible
  Matrix primal_y;   ///< average probability matrix (kPrimal certificate)
  Index iterations = 0;
  Real width = 0;          ///< the rho used
  Index planned_iterations = 0;  ///< the rho-dependent budget T(rho)
};

/// Width of an instance: max_i lambda_max(A_i) (exact, dense eigensolver).
Real instance_width(const PackingInstance& instance);

/// The width-dependent T(rho) = ceil(rho * ln(max(m,2)) / eps^2) + 1.
Index width_dependent_iterations(Real width, Index m, Real eps);

/// Solve the eps-decision problem with the width-dependent MMW algorithm.
BaselineResult decision_width_dependent(const PackingInstance& instance,
                                        const BaselineOptions& options = {});

}  // namespace psdp::core
