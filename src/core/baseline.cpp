#include "core/baseline.hpp"

#include <cmath>

#include "core/penalty_oracle.hpp"
#include "linalg/eig.hpp"
#include "mmw/mmw.hpp"
#include "util/log.hpp"

namespace psdp::core {

Real instance_width(const PackingInstance& instance) {
  Real width = 0;
  for (Index i = 0; i < instance.size(); ++i) {
    width = std::max(width, linalg::lambda_max_exact(instance[i]));
  }
  return width;
}

Index width_dependent_iterations(Real width, Index m, Real eps) {
  PSDP_CHECK(width > 0, "width must be positive");
  PSDP_CHECK(eps > 0 && eps < 1, "eps must lie in (0,1)");
  const Real ln_m = std::log(static_cast<Real>(std::max<Index>(m, 2)));
  return static_cast<Index>(std::ceil(width * ln_m / (eps * eps))) + 1;
}

BaselineResult decision_width_dependent(const PackingInstance& instance,
                                        const BaselineOptions& options) {
  const Index n = instance.size();
  const Index m = instance.dim();
  const Real eps = options.eps;
  PSDP_CHECK(eps > 0 && eps < 1, "baseline: eps must lie in (0,1)");

  BaselineResult result;
  result.width = options.width_override > 0 ? options.width_override
                                            : instance_width(instance);
  result.planned_iterations =
      width_dependent_iterations(result.width, m, eps);
  const Index t_max = options.max_iterations_override > 0
                          ? options.max_iterations_override
                          : result.planned_iterations;

  // eps0 <= 1/2 as required by Theorem 2.1.
  const Real eps0 = std::min<Real>(0.5, eps / 2);
  mmw::MatrixMwu game(m, eps0);

  Vector plays(n);  // how many times each constraint was played
  Vector dots(n);
  for (Index t = 0; t < t_max; ++t) {
    // The oracle layer's shared Frobenius sweep, dotted against MMW's own
    // probability matrix instead of exp(Psi(x)).
    const Matrix& p = game.probability();
    penalty_dots(instance, p, dots);

    Index best = 0;
    for (Index i = 1; i < n; ++i) {
      if (dots[i] < dots[best]) best = i;
    }
    result.iterations = t + 1;

    if (dots[best] > 1 + eps) {
      // Even the cheapest constraint is saturated against P: P itself is a
      // primal certificate (Tr P = 1, A_i . P > 1 + eps >= 1 for all i).
      result.outcome = DecisionOutcome::kPrimal;
      result.primal_y = p;
      return result;
    }

    plays[best] += 1;
    Matrix gain = instance[best];
    gain.scale(1 / result.width);  // enforce M <= I
    game.play(gain);
    PSDP_LOG(kDebug) << "baseline iter " << t << " best=" << best
                     << " dot=" << dots[best];
  }

  // Regret bound: lambda_max(avg play) <= (1+eps0)(1+eps) + rho ln m/(T eps0)
  // <= 1 + 4 eps for the planned T; rescaling makes the average feasible.
  result.outcome = DecisionOutcome::kDual;
  result.dual_x = std::move(plays);
  result.dual_x.scale(1 / (static_cast<Real>(t_max) * (1 + 4 * eps)));
  return result;
}

}  // namespace psdp::core
