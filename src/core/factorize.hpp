// Preprocessing: bring dense instances into the prefactored form that the
// nearly-linear-work path (Theorem 4.1 / Corollary 1.2) consumes.
//
// The paper (Section 1, "Work and Depth"): "If, however, the input program
// is not given in this form, we can add a preprocessing step that factors
// each A_i into Q_i Q_i^T since A_i is positive semidefinite." This module
// is that step, with two engines:
//
//  * kPivotedCholesky (default) -- rank-revealing, O(m r_i^2) per
//    constraint, produces factors exactly as wide as the numerical rank,
//    with a certified PSD residual of trace <= rel_tol * Tr[A_i].
//  * kEigendecomposition -- Q_i = V sqrt(Lambda) on the numerical rank;
//    O(m^3) but insensitive to pivot ordering, the reference engine.
//
// factorize_covering() additionally folds in the Appendix-A normalization:
// given the covering problem (1.1) it emits the normalized *factorized*
// packing instance with factors C^{-1/2} Q_i / sqrt(b_i), which is exactly
// the form the paper's Appendix A notes is preserved by normalization.
#pragma once

#include "core/instance.hpp"

namespace psdp::core {

struct FactorizeOptions {
  enum class Method {
    kPivotedCholesky,
    kEigendecomposition,
  };
  Method method = Method::kPivotedCholesky;
  /// Per-constraint residual-trace tolerance, relative to Tr[A_i].
  Real rel_tol = 1e-12;
  /// Entries of the sparse factor below drop_tol * ||Q_i||_F are dropped
  /// when converting to CSR (0 keeps exact zeros only).
  Real drop_tol = 0;
};

/// Per-run diagnostics of a factorization pass.
struct FactorizeReport {
  Index max_rank = 0;          ///< widest factor emitted
  Index total_nnz = 0;         ///< the q of Corollary 1.2
  Real max_residual_rel = 0;   ///< max_i Tr[A_i - Q_i Q_i^T] / Tr[A_i]
};

/// Factor every constraint of a dense packing instance. Throws
/// NumericalError when a constraint is not (numerically) PSD.
FactorizedPackingInstance factorize(const PackingInstance& instance,
                                    const FactorizeOptions& options = {},
                                    FactorizeReport* report = nullptr);

/// Result of the factorized Appendix-A normalization.
struct FactorizedNormalization {
  FactorizedPackingInstance packing;  ///< B_i = (C^{-1/2}Q_i/sqrt(b_i)) (...)^T
  Matrix c_inv_sqrt;                  ///< for mapping primal solutions back
  std::vector<Index> kept;            ///< original constraint index per B_i
  FactorizeReport report;
};

/// Appendix A in factorized form: factor each A_i, then scale the factor to
/// C^{-1/2} Q_i / sqrt(b_i). Constraints with b_i = 0 are dropped (satisfied
/// by any Y >= 0); constraints not supported on C are rejected, matching
/// core::normalize().
FactorizedNormalization factorize_covering(const CoveringProblem& problem,
                                           const FactorizeOptions& options = {},
                                           Real rank_tol = 1e-10);

}  // namespace psdp::core
