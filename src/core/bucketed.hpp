// Bucketed selective-acceleration variant of Algorithm 3.1, in the
// direction of the dynamically-bucketed selective coordinate descent of
// Wang-Mahoney-Mohan-Rao [WMMR15] that the paper's Section 1.1 points at.
//
// Observation: Algorithm 3.1 advances every coordinate in
// B = { i : W . A_i <= (1+eps) Tr W } by the same factor (1+alpha), even
// though a coordinate whose penalty sits far below the threshold could
// safely move much further. This variant buckets the selected coordinates
// by their slack
//
//     g_i = (1+eps) Tr W / (W . A_i)   >= 1   for i in B,
//
// quantized down to powers of two (the "buckets"), capped at boost_cap, and
// takes the step delta_i = alpha * g_i * x_i. Two exact safety rescalings
// keep the MMW analysis requirements intact *by measurement* rather than by
// worst case:
//
//  1. width:  lambda_max(sum_i delta_i A_i) <= eps  (the Theorem 2.1
//     precondition M <= I). Computed exactly each iteration; if exceeded,
//     the whole step is scaled back.
//  2. overshoot: ||delta||_1 <= eps ||x||_1 (the Claim 3.5 geometry).
//
// With both caps the per-iteration objects satisfy exactly the inequalities
// the paper's proof consumes, so the certificates returned are sound; what
// is *not* inherited is the worst-case iteration bound R (a boosted run can
// only be faster per unit of l1 growth, and bench_variants measures the
// realized speedup: heterogeneous-slack instances gain the most).
#pragma once

#include <vector>

#include "core/decision.hpp"

namespace psdp::core {

struct BucketedOptions {
  Real eps = 0.1;
  /// Hard cap on the per-coordinate boost factor g_i (power-of-two
  /// quantized). 1 recovers exactly Algorithm 3.1.
  Real boost_cap = 16;
  bool track_trajectory = false;
  Index max_iterations_override = 0;
  bool early_primal_exit = true;
  /// Cooperative check-in invoked once per round, outside any parallel
  /// region (yield_point.hpp); cannot change results. nullptr = none.
  YieldPoint* yield = nullptr;
};

struct FactorizedBucketedOptions : BucketedOptions {
  /// Accuracy of the sketched exp-dot estimates (0 = auto, eps/2). The
  /// primal certificate is checked against 1 + dot_eps so the noise cannot
  /// fake it.
  Real dot_eps = 0;
  /// Sketch/Taylor/blocking knobs forwarded to the oracle; the seed
  /// advances per iteration so sketch noise is independent across rounds.
  BigDotExpOptions dot_options;
  /// Caller-owned scratch shared across iterations/solves (results
  /// unaffected); nullptr = oracle-private workspace.
  SolverWorkspace* workspace = nullptr;
};

struct BucketedResult {
  DecisionOutcome outcome = DecisionOutcome::kPrimal;
  /// Measured-tight dual: x / lambda_max(final Psi), exactly feasible.
  Vector dual_x;
  Real psi_lambda_max = 0;
  bool spectrum_bound_exceeded = false;  ///< vs the Lemma 3.2 constant
  Matrix primal_y;
  Vector primal_dots;
  Real primal_trace = 0;
  Index iterations = 0;
  /// Number of iterations in which the width cap (1.) fired.
  Index width_rescales = 0;
  /// Number of iterations in which the overshoot cap (2.) fired.
  Index overshoot_rescales = 0;
  /// Average boost factor over all coordinate updates (1 = no acceleration
  /// happened; the plain algorithm's value).
  Real mean_boost = 1;
  AlgorithmConstants constants;
  std::vector<IterationStat> trajectory;
};

/// Solve the eps-decision problem with bucketed acceleration (dense path).
BucketedResult decision_bucketed(const PackingInstance& instance,
                                 const BucketedOptions& options = {});

/// Bucketed acceleration over prefactored input: slack buckets computed
/// from the sketched bigDotExp penalties, with both safety rescalings
/// *measured* on the implicit operator (width cap via a certified Lanczos
/// upper bound on lambda_max of the step, overshoot cap in exact
/// arithmetic) -- so the returned certificates are sound even though the
/// penalties are noisy. Never forms an m x m matrix; primal_y stays empty
/// with the certificate values in primal_dots.
BucketedResult decision_bucketed(const FactorizedPackingInstance& instance,
                                 const FactorizedBucketedOptions& options = {});

}  // namespace psdp::core
