// solverd: the persistent daemon front end over BatchScheduler.
//
// One Solverd owns one scheduler (so one warm ArtifactCache across every
// connection) and serves any Listener (serve/transport.hpp): Unix-domain or
// TCP sockets in production, the in-process loopback in tests. Per
// connection, a session thread reads frames:
//
//   * kSubmit payloads are manifest lines ('\n'-separated, the exact
//     serve/manifest.hpp format including `set` and priority=/deadline-ms=
//     keys). Each job line is submitted through BatchScheduler::submit and
//     streams back one kResult frame from its on_complete callback -- out
//     of submission order, as the scheduler finishes them. A job shed by
//     admission control comes back as kBackpressure instead, so a client
//     sees overload per job, immediately, not as a dropped connection.
//   * A malformed line answers with a kError frame (scope=frame, carrying
//     the manifest parser's "source:line: ..." message) and poisons
//     nothing: later lines in the same payload still submit.
//   * kGoodbye (or a clean EOF) starts the drain: the session waits for
//     every outstanding result to flush, answers kDone, and closes.
//   * A framing violation (ProtocolError) answers kError scope=connection,
//     then drains and closes -- fatal to that connection, invisible to
//     every other one and to the lanes.
//
// Result lines cross the wire with every Real as its 16-hex-digit IEEE-754
// bit pattern (util/wire.hpp), so a decoded JobResult compares bitwise
// equal (payload_bitwise_equal) to an in-process solve of the same
// instance at the same pool width -- the identity gate bench_load
// --endpoint enforces against the daemon.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/scheduler.hpp"
#include "serve/transport.hpp"

namespace psdp::serve {

// ----------------------------------------------------------- result codec --

/// One streamed result: the client-chosen per-connection job id (the
/// `id=N` echoed back; ids count submitted job lines per connection from
/// 1) plus the decoded JobResult.
struct WireResult {
  std::uint64_t id = 0;
  JobResult result;
};

/// Encode one JobResult as a single space-separated key=value line.
/// Reals travel as hex bit patterns; free text (label, instance, error) is
/// escaped token-safe. Exactly the payload of a kResult / kBackpressure
/// frame.
std::string encode_result_line(std::uint64_t id, const JobResult& result);

/// Inverse of encode_result_line: reconstructs the id and every field
/// payload_bitwise_equal inspects (plus the scheduling metadata). Throws
/// InvalidArgument on malformed lines.
WireResult decode_result_line(const std::string& line);

// ----------------------------------------------------------------- daemon --

struct SolverdOptions {
  /// Scheduler configuration (lanes, queue policy, admission control,
  /// cache sizing). SolverdOptions::lanes overrides scheduler.lanes so a
  /// front end can pass one number through.
  SchedulerOptions scheduler;
  /// Lane threads for the scheduler session; 0 = auto.
  int lanes = 0;
  /// Frame payload limit applied to inbound frames.
  std::size_t max_frame_bytes = FrameLimits{}.max_payload;
  /// Accept exactly this many connections, then stop accepting and drain
  /// (serve() returns once they finish). 0 = serve until stop(). CI smoke
  /// runs use --connections=1 for a deterministic daemon exit.
  int max_connections = 0;
  /// Honor `set key=value` manifest lines from clients (they mutate the
  /// process-wide tunable registry). Off refuses them with a kError frame
  /// -- a multi-tenant daemon should not let one client retune another's
  /// jobs.
  bool apply_set_lines = true;
};

/// Daemon counters (monotone across the daemon's lifetime).
struct SolverdStats {
  std::uint64_t connections = 0;     ///< sessions accepted
  std::uint64_t jobs = 0;            ///< job lines submitted to the scheduler
  std::uint64_t results = 0;         ///< kResult frames delivered
  std::uint64_t backpressure = 0;    ///< kBackpressure frames delivered
  std::uint64_t parse_errors = 0;    ///< malformed lines answered kError
  std::uint64_t protocol_errors = 0; ///< framing violations (fatal per conn)
  std::uint64_t write_failures = 0;  ///< frames dropped: peer disconnected
};

class Solverd {
 public:
  /// The listener is borrowed and must outlive the daemon. The scheduler
  /// session opens inside serve(), not here.
  Solverd(Listener& listener, SolverdOptions options = {});
  ~Solverd();

  Solverd(const Solverd&) = delete;
  Solverd& operator=(const Solverd&) = delete;

  /// Accept and serve connections until stop() (or until max_connections
  /// sessions finished). Blocks; returns after every session drained and
  /// the scheduler closed. Call from one thread at a time.
  void serve();

  /// Stop serving: unblock the accept loop, half-close every live session
  /// (their pending reads return EOF; their queued results still flush,
  /// then each answers kDone). Idempotent, callable from any thread and
  /// from signal-ish contexts (a flag, a listener shutdown, and reader
  /// half-closes -- no locks held while calling into the transport).
  void stop();

  /// The scheduler (its cache/stats) -- valid whether or not serving.
  BatchScheduler& scheduler() { return scheduler_; }
  const SolverdOptions& options() const { return options_; }
  SolverdStats stats() const;

 private:
  struct Session;

  void session_loop(const std::shared_ptr<Session>& session);
  void handle_submit(const std::shared_ptr<Session>& session,
                     const std::string& payload);
  void deliver(const std::shared_ptr<Session>& session, std::uint64_t id,
               const JobResult& result);

  Listener& listener_;
  SolverdOptions options_;
  BatchScheduler scheduler_;

  std::atomic<bool> stopping_{false};
  std::mutex sessions_mutex_;  ///< guards sessions_ and session_threads_
  std::vector<std::weak_ptr<Session>> sessions_;
  std::vector<std::thread> session_threads_;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> jobs_{0};
  std::atomic<std::uint64_t> results_{0};
  std::atomic<std::uint64_t> backpressure_{0};
  std::atomic<std::uint64_t> parse_errors_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> write_failures_{0};
};

// ----------------------------------------------------------------- client --

/// Thin client over any Connection: frame the requests, decode the result
/// stream. Shared by bench_load --endpoint and the loopback tests; a
/// non-C++ client only needs docs/SOLVERD.md.
class SolverdClient {
 public:
  explicit SolverdClient(std::unique_ptr<Connection> connection,
                         FrameLimits limits = {});

  /// Send one kSubmit frame of manifest lines ('\n'-separated). Returns
  /// false when the daemon is gone.
  bool submit(std::string_view manifest_lines);

  /// Send kGoodbye: no more submissions, drain and close.
  bool goodbye();

  /// Read the next raw frame (nullopt on clean EOF). Throws ProtocolError
  /// on a torn stream.
  std::optional<Frame> read();

  /// Everything the daemon streams until kDone or EOF, decoded.
  struct Drain {
    std::vector<WireResult> results;       ///< kResult frames, arrival order
    std::vector<WireResult> backpressure;  ///< kBackpressure frames
    std::vector<std::string> errors;       ///< kError payloads
    bool done = false;  ///< a kDone frame arrived (clean drain)
  };

  /// goodbye(), then read until kDone/EOF.
  Drain drain();

  Connection& connection() { return *connection_; }

 private:
  std::unique_ptr<Connection> connection_;
  FrameLimits limits_;
};

}  // namespace psdp::serve
