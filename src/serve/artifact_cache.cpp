#include "serve/artifact_cache.hpp"

#include <algorithm>
#include <utility>

namespace psdp::serve {

const char* job_kind_name(JobKind kind) {
  switch (kind) {
    case JobKind::kPackingDense:
      return "packing-dense";
    case JobKind::kPackingFactorized:
      return "packing-factorized";
    case JobKind::kCovering:
      return "covering";
    case JobKind::kPackingLp:
      return "packing-lp";
  }
  return "unknown";
}

JobKind job_kind_from_name(const std::string& name) {
  if (name == "packing-dense") return JobKind::kPackingDense;
  if (name == "packing-factorized") return JobKind::kPackingFactorized;
  if (name == "covering") return JobKind::kCovering;
  if (name == "packing-lp") return JobKind::kPackingLp;
  PSDP_CHECK(false, str("serve: unknown job kind '", name,
                        "' (packing-dense | packing-factorized | covering | "
                        "packing-lp)"));
  return JobKind::kPackingDense;  // unreachable
}

Index PreparedInstance::estimated_work() const {
  switch (kind) {
    case JobKind::kPackingDense:
      // Dense oracle refresh: O(m^3) eigensolve + n m^2 dots per iteration.
      if (!packing) return 0;
      return packing->dim() * packing->dim() *
             (packing->dim() + packing->size());
    case JobKind::kPackingFactorized: {
      // Sketched oracle: O(r k q) per iteration; r and k are eps-dependent,
      // so nnz-proportional work (times a nominal r k ~ 256) is the signal.
      if (!factorized) return 0;
      return factorized->total_nnz() * 256;
    }
    case JobKind::kCovering:
      if (!covering) return 0;
      return covering->dim() * covering->dim() *
             (covering->dim() + covering->size());
    case JobKind::kPackingLp:
      if (!lp) return 0;
      return lp->rows() * lp->size();
  }
  return 0;
}

util::ShapeBucket PreparedInstance::shape_bucket() const {
  switch (kind) {
    case JobKind::kPackingDense:
      if (!packing) return {};
      return util::ShapeBucket::of(
          packing->dim() * packing->dim() * packing->size(), packing->dim(),
          packing->size());
    case JobKind::kPackingFactorized:
      if (!factorized) return {};
      return util::ShapeBucket::of(factorized->total_nnz(),
                                   factorized->dim(), factorized->size());
    case JobKind::kCovering:
      if (!covering) return {};
      return util::ShapeBucket::of(
          covering->dim() * covering->dim() * covering->size(),
          covering->dim(), covering->size());
    case JobKind::kPackingLp:
      if (!lp) return {};
      return util::ShapeBucket::of(lp->rows() * lp->size(), lp->rows(),
                                   lp->size());
  }
  return {};
}

void PreparedInstance::validate() const {
  const int set = (packing != nullptr) + (factorized != nullptr) +
                  (covering != nullptr) + (lp != nullptr);
  PSDP_CHECK(set == 1, "serve: PreparedInstance must hold exactly one instance");
  switch (kind) {
    case JobKind::kPackingDense:
      PSDP_CHECK(packing != nullptr, "serve: kind/instance mismatch");
      break;
    case JobKind::kPackingFactorized:
      PSDP_CHECK(factorized != nullptr, "serve: kind/instance mismatch");
      break;
    case JobKind::kCovering:
      PSDP_CHECK(covering != nullptr && normalized != nullptr,
                 "serve: covering instances carry their normalization");
      break;
    case JobKind::kPackingLp:
      PSDP_CHECK(lp != nullptr, "serve: kind/instance mismatch");
      break;
  }
}

PreparedInstance prepare_packing(core::PackingInstance instance) {
  PreparedInstance prepared;
  prepared.kind = JobKind::kPackingDense;
  prepared.packing =
      std::make_shared<const core::PackingInstance>(std::move(instance));
  return prepared;
}

PreparedInstance prepare_factorized(core::FactorizedPackingInstance instance) {
  PreparedInstance prepared;
  prepared.kind = JobKind::kPackingFactorized;
  prepared.factorized = std::make_shared<const core::FactorizedPackingInstance>(
      std::move(instance));
  return prepared;
}

PreparedInstance prepare_covering(core::CoveringProblem problem) {
  PreparedInstance prepared;
  prepared.kind = JobKind::kCovering;
  prepared.covering =
      std::make_shared<const core::CoveringProblem>(std::move(problem));
  // The Appendix-A normalization (an O(m^3) eigensolve of C) is the
  // covering side's expensive per-instance artifact: do it once here, so
  // every (eps, probe) job on this problem reuses it.
  prepared.normalized = std::make_shared<const core::NormalizedProblem>(
      core::normalize(*prepared.covering));
  return prepared;
}

PreparedInstance prepare_lp(core::PackingLp lp) {
  PreparedInstance prepared;
  prepared.kind = JobKind::kPackingLp;
  prepared.lp = std::make_shared<const core::PackingLp>(std::move(lp));
  return prepared;
}

ArtifactCache::ArtifactCache(Options options)
    : options_(std::move(options)),
      plan_cache_(std::max<std::size_t>(options_.capacity * 4, 16)) {
  PSDP_CHECK(options_.capacity >= 1, "serve: cache capacity must be positive");
  slots_.reserve(options_.capacity);
}

sparse::TransposePlanOptions ArtifactCache::plan_options() {
  sparse::TransposePlanOptions plan = options_.plan;
  // The whole point of the owned memo: builders tune into this cache, not
  // the process-wide one.
  plan.autotune.plan_cache = &plan_cache_;
  return plan;
}

void ArtifactCache::insert_slot_locked(std::shared_ptr<Entry> entry) {
  if (slots_.size() >= options_.capacity) {
    std::size_t victim = 0;
    for (std::size_t i = 1; i < slots_.size(); ++i) {
      if (slots_[i].last_used < slots_[victim].last_used) victim = i;
    }
    slots_[victim] = Slot{std::move(entry), ++tick_};
    ++stats_.evictions;
  } else {
    slots_.push_back(Slot{std::move(entry), ++tick_});
  }
}

ArtifactCache::Resolved ArtifactCache::get(const std::string& key,
                                           const Builder& build) {
  PSDP_CHECK(build != nullptr, "serve: ArtifactCache::get needs a builder");
  std::shared_ptr<Entry> entry;
  bool inserted = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (Slot& slot : slots_) {
      if (slot.entry->key_ == key) {
        slot.last_used = ++tick_;
        entry = slot.entry;
        break;
      }
    }
    if (!entry) {
      entry = std::make_shared<Entry>();
      entry->key_ = key;
      entry->pool_cap_ = options_.workspaces_per_entry;
      entry->owner_ = this;
      insert_slot_locked(entry);
      inserted = true;
      ++stats_.misses;
    }
  }
  // Build (or wait for the building lane) outside the cache lock: prepare
  // can run eigensolves and index builds, and other keys must not stall
  // behind it.
  bool built_by_us = false;
  {
    std::lock_guard<std::mutex> build_lock(entry->build_mutex_);
    if (!entry->built_) {
      // Either we inserted the shell, or the inserting lane's builder threw
      // and we are the retry.
      built_by_us = true;
      try {
        entry->instance_ = build(plan_options());
        entry->instance_.validate();
        entry->built_ = true;
      } catch (...) {
        // Leave no half-built entry behind: a later get() must retry.
        std::lock_guard<std::mutex> lock(mutex_);
        slots_.erase(std::remove_if(slots_.begin(), slots_.end(),
                                    [&](const Slot& s) {
                                      return s.entry == entry;
                                    }),
                     slots_.end());
        throw;
      }
    }
  }
  const bool hit = !inserted && !built_by_us;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (hit) {
      ++stats_.hits;
    } else if (!inserted) {
      // We are the retry after a failed build whose catch erased the
      // slot: put the now-built entry back so later lookups hit it
      // (counted as the miss it effectively was) -- unless another lane
      // already re-populated the key with a fresh shell, in which case
      // theirs stays (two slots must never share one key; our entry
      // remains valid for this caller through its shared_ptr).
      bool key_present = false;
      for (Slot& slot : slots_) {
        if (slot.entry->key_ == key) {
          key_present = true;
          break;
        }
      }
      if (!key_present) {
        ++stats_.misses;
        insert_slot_locked(entry);
      }
    }
  }
  return Resolved{std::move(entry), hit};
}

std::shared_ptr<ArtifactCache::Entry> ArtifactCache::find(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Slot& slot : slots_) {
    if (slot.entry->key_ == key) return slot.entry;
  }
  return nullptr;
}

ArtifactCache::Stats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ArtifactCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

void ArtifactCache::clear() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    slots_.clear();
  }
  plan_cache_.clear();
}

WorkspaceLease::WorkspaceLease(std::shared_ptr<ArtifactCache::Entry> entry)
    : entry_(std::move(entry)) {
  if (!entry_) return;
  bool reused = false;
  {
    std::lock_guard<std::mutex> lock(entry_->pool_mutex_);
    if (!entry_->pool_.empty()) {
      workspace_ = std::move(entry_->pool_.back());
      entry_->pool_.pop_back();
      reused = true;
    }
  }
  if (!workspace_) {
    workspace_ = std::make_unique<core::SolverWorkspace>();
  }
  if (reused && entry_->owner_ != nullptr) {
    std::lock_guard<std::mutex> lock(entry_->owner_->mutex_);
    ++entry_->owner_->stats_.workspace_reuses;
  }
}

void WorkspaceLease::release() {
  if (!entry_ || !workspace_) {
    entry_.reset();
    workspace_.reset();
    return;
  }
  std::lock_guard<std::mutex> lock(entry_->pool_mutex_);
  if (entry_->pool_.size() < entry_->pool_cap_) {
    entry_->pool_.push_back(std::move(workspace_));
  }
  workspace_.reset();
  entry_.reset();
}

WorkspaceLease::~WorkspaceLease() { release(); }

WorkspaceLease::WorkspaceLease(WorkspaceLease&& other) noexcept
    : entry_(std::move(other.entry_)), workspace_(std::move(other.workspace_)) {
  other.entry_.reset();
  other.workspace_.reset();
}

WorkspaceLease& WorkspaceLease::operator=(WorkspaceLease&& other) noexcept {
  if (this != &other) {
    release();
    entry_ = std::move(other.entry_);
    workspace_ = std::move(other.workspace_);
    other.entry_.reset();
    other.workspace_.reset();
  }
  return *this;
}

}  // namespace psdp::serve
