// The serve layer's per-instance artifact store.
//
// PR 1-4 made a *single* solve fast: blocked bigDotExp kernels, the
// PenaltyOracle layer, the cached transpose index + segment grid, the
// autotuned KernelPlan, and the zero-allocation SolverWorkspace. All of
// those artifacts are per-matrix and solve-invariant -- yet the repo's
// entry points rebuilt every one of them per call. The ArtifactCache keys
// prepared instances by identity and shares them across the jobs of a
// batch (serve/scheduler.hpp):
//
//   * the prepared instance itself (factor CSRs with their transpose
//     indexes, segment grids and KernelPlans already built; covering
//     problems with the Appendix-A normalization -- an O(m^3) eigensolve
//     -- already performed);
//   * a pool of core::SolverWorkspace instances, leased per job and
//     recycled, so concurrent jobs on one instance keep the steady-state
//     zero-allocation property without sharing scratch;
//   * an owned sparse::TransposePlanCache: the kernel-plan memo used while
//     preparing this cache's instances, independently capped and cleared
//     from the process-wide one (see kernel_plan.hpp -- this is the PR 4
//     global memo turned into an owned, evictable object).
//
// The cache is bounded: entries are evicted least-recently-used once
// `Options::capacity` distinct instances have been prepared. Eviction only
// drops the cache's reference -- jobs still running on an evicted entry
// keep it alive through their shared_ptr. Hit/miss/evict counters back the
// bench_serve acceptance assertion ("zero transpose-index/KernelPlan
// rebuilds after cache warmup") and the tests.
//
// Thread safety: get() may be called from concurrent scheduler lanes; the
// per-entry build runs under that entry's own mutex (so one lane builds
// while others wait and then share), and the map/LRU state under the cache
// mutex. Prepared instances are immutable after build and safe to share
// across lanes; workspaces are handed out exclusively via WorkspaceLease.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/optimize.hpp"
#include "core/poslp.hpp"
#include "sparse/kernel_plan.hpp"

namespace psdp::serve {

/// Which solver family a job runs. Doubles as the tag of PreparedInstance
/// and mirrors solver_cli's --kind vocabulary.
enum class JobKind {
  kPackingDense,       ///< core::approx_packing(PackingInstance)
  kPackingFactorized,  ///< core::approx_packing(FactorizedPackingInstance)
  kCovering,           ///< core::approx_covering (cached normalization)
  kPackingLp,          ///< core::approx_packing_lp
};

/// Stable names ("packing-dense", "packing-factorized", "covering",
/// "packing-lp"), shared by the job manifest and the bench tables.
const char* job_kind_name(JobKind kind);
/// Inverse of job_kind_name; throws InvalidArgument on unknown names.
JobKind job_kind_from_name(const std::string& name);

/// One prepared, immutable, shareable instance. Exactly the pointer
/// matching `kind` is set; the others stay null. For covering problems the
/// normalization (the per-instance O(m^3) eigensolve) is precomputed here,
/// so repeated (eps, probe) configurations of one problem pay it once.
struct PreparedInstance {
  JobKind kind = JobKind::kPackingFactorized;
  std::shared_ptr<const core::PackingInstance> packing;
  std::shared_ptr<const core::FactorizedPackingInstance> factorized;
  std::shared_ptr<const core::CoveringProblem> covering;
  std::shared_ptr<const core::NormalizedProblem> normalized;  ///< kCovering
  std::shared_ptr<const core::PackingLp> lp;

  /// Rough per-iteration work (flops) of a solve on this instance -- the
  /// scheduler's sharding signal (serve/scheduler.hpp): small estimates
  /// pack onto lanes, large ones keep the full pool width.
  Index estimated_work() const;

  /// The tunable-profile shape bucket of this instance (see
  /// util::TunableProfileStore): util::ShapeBucket::of over (nnz, rows,
  /// cols), where factorized instances report (total factor nnz, ambient
  /// dim, constraint count) and the dense/LP kinds their dense equivalents.
  /// Serve entry points match this against a loaded profile at startup.
  util::ShapeBucket shape_bucket() const;

  /// Throws InvalidArgument unless exactly the pointer matching `kind` is
  /// set (normalized is required alongside covering).
  void validate() const;
};

/// Convenience constructors: wrap an instance and (for covering) perform
/// the normalization up front.
PreparedInstance prepare_packing(core::PackingInstance instance);
PreparedInstance prepare_factorized(core::FactorizedPackingInstance instance);
PreparedInstance prepare_covering(core::CoveringProblem problem);
PreparedInstance prepare_lp(core::PackingLp lp);

class ArtifactCache {
 public:
  struct Options {
    /// Prepared instances kept (LRU beyond this). Defaulted from the
    /// tunable registry (`cache_capacity`, default 32).
    std::size_t capacity =
        static_cast<std::size_t>(util::tunable_cache_capacity());
    /// Pooled SolverWorkspaces retained per entry; leases beyond the cap
    /// are served with fresh workspaces that are dropped on release.
    /// Defaulted from the tunable registry (`workspaces_per_entry`).
    std::size_t workspaces_per_entry =
        static_cast<std::size_t>(util::tunable_workspaces_per_entry());
    /// Transpose-index build options handed to builders. Its
    /// autotune.plan_cache field is overwritten to point at this cache's
    /// owned TransposePlanCache (see plan_options()).
    sparse::TransposePlanOptions plan;
  };

  struct Stats {
    std::uint64_t hits = 0;        ///< get() found a prepared entry
    std::uint64_t misses = 0;      ///< get() ran the builder
    std::uint64_t evictions = 0;   ///< entries displaced by the cap
    std::uint64_t workspace_reuses = 0;  ///< leases served from the pool
  };

  /// Builds the instance for a missing key. Receives the cache's
  /// plan_options() so factor preparation tunes into the owned plan memo.
  using Builder =
      std::function<PreparedInstance(const sparse::TransposePlanOptions&)>;

  /// One cached instance plus its workspace pool. Shared with jobs; safe
  /// to hold past eviction.
  class Entry {
   public:
    const PreparedInstance& instance() const { return instance_; }
    const std::string& key() const { return key_; }

   private:
    friend class ArtifactCache;
    friend class WorkspaceLease;

    std::string key_;
    PreparedInstance instance_;
    std::mutex build_mutex_;  ///< serializes the one-time build
    bool built_ = false;

    std::mutex pool_mutex_;
    std::vector<std::unique_ptr<core::SolverWorkspace>> pool_;
    std::size_t pool_cap_ = 0;
    ArtifactCache* owner_ = nullptr;  ///< for the workspace_reuses counter
  };

  // Two constructors instead of one defaulted argument: GCC cannot parse a
  // nested-aggregate default initializer inside the enclosing class.
  ArtifactCache() : ArtifactCache(Options{}) {}
  explicit ArtifactCache(Options options);

  /// The entry for `key`, building it via `build` on a miss. Concurrent
  /// calls for one key build once and share; a builder that throws leaves
  /// no entry behind (the next get() retries). Returns the entry plus
  /// whether it was served without running the builder.
  struct Resolved {
    std::shared_ptr<Entry> entry;
    bool hit = false;
  };
  Resolved get(const std::string& key, const Builder& build);

  /// The entry for `key` if prepared, nullptr otherwise (no counters).
  std::shared_ptr<Entry> find(const std::string& key);

  /// Build options whose autotune.plan_cache routes into the owned memo;
  /// pass these to io loaders / generators when preparing instances.
  sparse::TransposePlanOptions plan_options();

  /// The owned kernel-plan memo (stats feed the bench/test assertions).
  sparse::TransposePlanCache& plan_cache() { return plan_cache_; }

  Stats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return options_.capacity; }

  /// Drop every entry and the owned plan memo (in-flight leases survive via
  /// their shared_ptr).
  void clear();

 private:
  friend class WorkspaceLease;

  struct Slot {
    std::shared_ptr<Entry> entry;
    std::uint64_t last_used = 0;
  };

  /// Insert under an already-held mutex_, evicting the LRU slot when at
  /// capacity (the one place eviction accounting lives).
  void insert_slot_locked(std::shared_ptr<Entry> entry);

  Options options_;
  mutable std::mutex mutex_;
  std::uint64_t tick_ = 0;
  std::vector<Slot> slots_;  ///< capacity is small; linear scans
  Stats stats_;
  sparse::TransposePlanCache plan_cache_;
};

/// RAII lease of a pooled SolverWorkspace: taken per job, returned to the
/// entry's pool on destruction (dropped instead once the pool is at its
/// cap). Move-only; a default-constructed lease holds nothing and get()
/// returns nullptr (callers pass that straight to
/// DecisionOptions::workspace, whose null means "oracle-private scratch").
class WorkspaceLease {
 public:
  WorkspaceLease() = default;
  explicit WorkspaceLease(std::shared_ptr<ArtifactCache::Entry> entry);
  ~WorkspaceLease();

  WorkspaceLease(WorkspaceLease&& other) noexcept;
  WorkspaceLease& operator=(WorkspaceLease&& other) noexcept;
  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;

  core::SolverWorkspace* get() const { return workspace_.get(); }

 private:
  void release();

  std::shared_ptr<ArtifactCache::Entry> entry_;
  std::unique_ptr<core::SolverWorkspace> workspace_;
};

}  // namespace psdp::serve
