// The job-manifest format of solver_cli's batch mode.
//
// A manifest is line-oriented, one job per line, '#' starting a comment:
//
//   <kind> <path> [key=value ...]
//
// with <kind> one of packing-dense | packing-factorized | covering |
// packing-lp (solver_cli's --kind vocabulary), <path> an instance file in
// the io/instance_io.hpp format, and the optional keys:
//
//   eps=0.1          target relative accuracy (OptimizeOptions::eps)
//   decision-eps=0   per-probe decision eps (0 = auto)
//   probe=decision   factorized probe solver: decision | phased | bucketed
//   sketch-rows=N    fixed sketch rows (BigDotExpOptions::
//                    sketch_rows_override; 0 = the eps-derived default) --
//                    lets a wire client reproduce an in-process
//                    configuration exactly (bench_load --endpoint)
//   label=NAME       display label (default: "<path>:<line>")
//   id=KEY           artifact-cache key (default: "<kind>:<path>"), so jobs
//                    naming the same file share its prepared artifacts
//   wide=0|1         force the job to run at full pool width (wide=1) or
//                    inside a lane (wide=0); default: narrow
//   priority=N       scheduling priority (integer, higher runs first;
//                    default 0) -- only meaningful under the EDF queue
//   deadline-ms=X    relative deadline in milliseconds from submission
//                    (positive real; 0 = none). EDF orders equal-priority
//                    jobs by earliest deadline, and JobResult reports
//                    whether it was met.
//
// Example -- nine jobs over three instances, sharing artifacts per file:
//
//   packing-factorized big.psdp eps=0.2 probe=decision
//   packing-factorized big.psdp eps=0.2 probe=phased
//   packing-factorized big.psdp eps=0.1
//   covering beams.psdp eps=0.2
//   covering beams.psdp eps=0.1
//   packing-lp matching.psdp eps=0.05
//   packing-lp matching.psdp eps=0.02
//   packing-dense ellipses.psdp eps=0.15
//   packing-dense ellipses.psdp eps=0.1 label=tight
//
// Malformed lines raise InvalidArgument naming the line number, the token,
// and the offending text (the same error discipline as util::Cli).
#pragma once

#include <iosfwd>
#include <string>

#include "serve/scheduler.hpp"

namespace psdp::serve {

/// What one manifest line turned out to be.
enum class ManifestLineKind {
  kBlank,  ///< empty or comment-only; nothing happened
  kSet,    ///< a `set key=value ...` line; the tunable registry was mutated
  kJob,    ///< a job line; `*job` was filled in
};

/// Parse a single manifest line. Comments are stripped, `set` lines are
/// applied to the process-wide tunable registry immediately, and job lines
/// fill `*job`. Malformed lines raise InvalidArgument prefixed
/// "`source`:`line_number`:" and quoting the line -- the same discipline
/// for files (read_manifest) and wire submissions (serve/solverd.hpp),
/// which is what keeps daemon error payloads as precise as CLI parse
/// errors.
ManifestLineKind parse_manifest_line(const std::string& line,
                                     const std::string& source,
                                     Index line_number, JobSpec* job);

/// Parse a manifest into a batch. Paths are taken as written (resolve them
/// relative to the caller's working directory); instance files are loaded
/// lazily by the jobs' builders, so a missing file fails that job -- not
/// the parse. `source` names the manifest in error messages.
SolveBatch read_manifest(std::istream& in, const std::string& source = "manifest");

/// read_manifest over a file.
SolveBatch load_manifest(const std::string& path);

}  // namespace psdp::serve
