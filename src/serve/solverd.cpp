#include "serve/solverd.hpp"

#include <condition_variable>
#include <mutex>
#include <sstream>

#include "serve/manifest.hpp"
#include "util/cli.hpp"
#include "util/wire.hpp"

namespace psdp::serve {

// ----------------------------------------------------------- result codec --

namespace {

std::string join_hex(const linalg::Vector& v) {
  std::string out;
  out.reserve(static_cast<std::size_t>(v.size()) * 17);
  for (Index i = 0; i < v.size(); ++i) {
    if (i > 0) out += ',';
    out += util::hex_bits(v[i]);
  }
  return out;
}

linalg::Vector split_hex(const std::string& text, const std::string& what) {
  if (text.empty()) return linalg::Vector{};
  std::vector<Real> values;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t comma = text.find(',', begin);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    values.push_back(util::from_hex_bits(text.substr(begin, end - begin), what));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return linalg::Vector(std::move(values));
}

bool parse_wire_bool(const std::string& value, const std::string& what) {
  PSDP_CHECK(value == "0" || value == "1",
             str("solverd: ", what, " must be 0 or 1, got '", value, "'"));
  return value == "1";
}

}  // namespace

std::string encode_result_line(std::uint64_t id, const JobResult& r) {
  std::ostringstream out;
  out << "id=" << id
      << " instance=" << util::escape_line(r.instance)
      << " label=" << util::escape_line(r.label)
      << " kind=" << job_kind_name(r.kind)
      << " ok=" << (r.ok ? 1 : 0)
      << " shed=" << (r.shed ? 1 : 0)
      << " cache=" << (r.cache_hit ? 1 : 0)
      << " lane=" << r.lane
      << " preempt=" << r.preemptions
      << " promoted=" << (r.promoted ? 1 : 0)
      << " queue_s=" << util::hex_bits(r.queue_seconds)
      << " run_s=" << util::hex_bits(r.run_seconds)
      << " deadline="
      << (r.deadline_ms.has_value() ? util::hex_bits(*r.deadline_ms)
                                    : std::string("none"))
      << " met=" << (r.deadline_met ? 1 : 0);
  if (r.ok) {
    // Exactly the fields payload_bitwise_equal inspects, bit-exact.
    switch (r.kind) {
      case JobKind::kPackingDense:
      case JobKind::kPackingFactorized:
        out << " lower=" << util::hex_bits(r.packing.lower)
            << " upper=" << util::hex_bits(r.packing.upper)
            << " x=" << join_hex(r.packing.best_x);
        break;
      case JobKind::kCovering:
        out << " objective=" << util::hex_bits(r.covering.objective)
            << " lower_bound=" << util::hex_bits(r.covering.lower_bound)
            << " plower=" << util::hex_bits(r.covering.packing.lower)
            << " pupper=" << util::hex_bits(r.covering.packing.upper);
        break;
      case JobKind::kPackingLp:
        out << " lower=" << util::hex_bits(r.lp.lower)
            << " upper=" << util::hex_bits(r.lp.upper)
            << " x=" << join_hex(r.lp.best_x);
        break;
    }
  }
  if (!r.error.empty()) out << " error=" << util::escape_line(r.error);
  return out.str();
}

WireResult decode_result_line(const std::string& line) {
  WireResult out;
  JobResult& r = out.result;
  bool saw_id = false;
  bool saw_kind = false;
  std::istringstream tokens(line);
  std::string token;
  while (tokens >> token) {
    const std::size_t eq = token.find('=');
    PSDP_CHECK(eq != std::string::npos,
               str("solverd: result token without '=': '", token, "'"));
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "id") {
      const Index id = util::detail::parse_value<Index>(value);
      PSDP_CHECK(id >= 1, str("solverd: result id must be >= 1, got ", value));
      out.id = static_cast<std::uint64_t>(id);
      saw_id = true;
    } else if (key == "instance") {
      r.instance = util::unescape_line(value);
    } else if (key == "label") {
      r.label = util::unescape_line(value);
    } else if (key == "kind") {
      r.kind = job_kind_from_name(value);
      saw_kind = true;
    } else if (key == "ok") {
      r.ok = parse_wire_bool(value, "ok");
    } else if (key == "shed") {
      r.shed = parse_wire_bool(value, "shed");
    } else if (key == "cache") {
      r.cache_hit = parse_wire_bool(value, "cache");
    } else if (key == "lane") {
      r.lane = util::detail::parse_value<int>(value);
    } else if (key == "preempt") {
      r.preemptions = util::detail::parse_value<int>(value);
    } else if (key == "promoted") {
      r.promoted = parse_wire_bool(value, "promoted");
    } else if (key == "queue_s") {
      r.queue_seconds = util::from_hex_bits(value, "queue_s");
    } else if (key == "run_s") {
      r.run_seconds = util::from_hex_bits(value, "run_s");
      r.seconds = r.run_seconds;
    } else if (key == "deadline") {
      if (value == "none") {
        r.deadline_ms.reset();
      } else {
        r.deadline_ms = util::from_hex_bits(value, "deadline");
      }
    } else if (key == "met") {
      r.deadline_met = parse_wire_bool(value, "met");
    } else if (key == "lower") {
      r.packing.lower = r.lp.lower = util::from_hex_bits(value, "lower");
    } else if (key == "upper") {
      r.packing.upper = r.lp.upper = util::from_hex_bits(value, "upper");
    } else if (key == "x") {
      r.packing.best_x = split_hex(value, "x");
      r.lp.best_x = r.packing.best_x;
    } else if (key == "objective") {
      r.covering.objective = util::from_hex_bits(value, "objective");
    } else if (key == "lower_bound") {
      r.covering.lower_bound = util::from_hex_bits(value, "lower_bound");
    } else if (key == "plower") {
      r.covering.packing.lower = util::from_hex_bits(value, "plower");
    } else if (key == "pupper") {
      r.covering.packing.upper = util::from_hex_bits(value, "pupper");
    } else if (key == "error") {
      r.error = util::unescape_line(value);
    } else {
      // Forward compatibility: a newer daemon may add fields. Tolerate.
    }
  }
  PSDP_CHECK(saw_id && saw_kind,
             str("solverd: result line missing id/kind: '", line, "'"));
  return out;
}

// ----------------------------------------------------------------- daemon --

/// Per-connection state. Kept alive by shared_ptrs captured in on_complete
/// callbacks, so a result can always be delivered (or counted as a write
/// failure) even while the session is tearing down.
struct Solverd::Session {
  std::uint64_t conn_id = 0;
  std::string source;  ///< "conn<N>": the error-message manifest name
  std::unique_ptr<Connection> connection;

  /// Serializes every outbound frame: lane threads flush results while the
  /// session thread answers parse errors.
  std::mutex write_mutex;
  bool dead = false;            ///< peer gone: drop (and count) writes
  std::uint64_t delivered = 0;  ///< kResult + kBackpressure frames sent

  /// Submitted-but-undelivered job count; the drain barrier.
  std::mutex pending_mutex;
  std::condition_variable pending_cv;
  std::size_t outstanding = 0;

  Index line_number = 0;         ///< manifest lines seen, across frames
  std::uint64_t next_job_id = 0; ///< wire ids count job lines from 1

  /// Write one frame under the write lock. Returns false (and marks the
  /// session dead) when the peer is gone.
  bool write(FrameType type, std::string_view payload) {
    std::lock_guard<std::mutex> lock(write_mutex);
    if (dead) return false;
    if (!write_frame(*connection, type, payload)) {
      dead = true;
      return false;
    }
    if (type == FrameType::kResult || type == FrameType::kBackpressure) {
      ++delivered;
    }
    return true;
  }
};

Solverd::Solverd(Listener& listener, SolverdOptions options)
    : listener_(listener),
      options_(std::move(options)),
      scheduler_(options_.scheduler) {}

Solverd::~Solverd() { stop(); }

SolverdStats Solverd::stats() const {
  SolverdStats out;
  out.connections = connections_.load();
  out.jobs = jobs_.load();
  out.results = results_.load();
  out.backpressure = backpressure_.load();
  out.parse_errors = parse_errors_.load();
  out.protocol_errors = protocol_errors_.load();
  out.write_failures = write_failures_.load();
  return out;
}

void Solverd::serve() {
  stopping_.store(false);
  scheduler_.open(options_.lanes);
  int accepted = 0;
  while (!stopping_.load()) {
    std::unique_ptr<Connection> connection = listener_.accept();
    if (connection == nullptr) break;  // listener shut down
    if (stopping_.load()) {
      connection->close();
      break;
    }
    auto session = std::make_shared<Session>();
    session->conn_id = ++connections_;
    session->source = str("conn", session->conn_id);
    session->connection = std::move(connection);
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      sessions_.push_back(session);
      session_threads_.emplace_back(
          [this, session] { session_loop(session); });
    }
    ++accepted;
    if (options_.max_connections > 0 &&
        accepted >= options_.max_connections) {
      break;
    }
  }
  listener_.shutdown();  // idempotent; refuses connects while we drain
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    threads.swap(session_threads_);
    sessions_.clear();
  }
  for (std::thread& thread : threads) thread.join();
  // Results were already streamed per session; close() returns the same
  // payloads again for the batch interface, which the daemon discards.
  scheduler_.close();
}

void Solverd::stop() {
  stopping_.store(true);
  listener_.shutdown();
  // Half-close the live sessions: their pending reads return EOF, which
  // each session treats exactly like kGoodbye -- drain, kDone, close.
  std::vector<std::shared_ptr<Session>> live;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (const std::weak_ptr<Session>& weak : sessions_) {
      if (std::shared_ptr<Session> session = weak.lock()) {
        live.push_back(std::move(session));
      }
    }
  }
  for (const std::shared_ptr<Session>& session : live) {
    session->connection->shutdown_read();
  }
}

void Solverd::session_loop(const std::shared_ptr<Session>& session) {
  const FrameLimits limits{options_.max_frame_bytes};
  while (true) {
    std::optional<Frame> frame;
    try {
      frame = read_frame(*session->connection, limits);
    } catch (const ProtocolError& e) {
      // The byte stream cannot be resynchronized: report, then fall
      // through to the drain so already-submitted jobs still deliver.
      ++protocol_errors_;
      session->write(FrameType::kError,
                          str("scope=connection error=",
                              util::escape_line(e.what())));
      break;
    }
    if (!frame.has_value()) break;  // clean EOF (or stop()'s half-close)
    if (frame->type == FrameType::kGoodbye) break;
    if (frame->type == FrameType::kSubmit) {
      handle_submit(session, frame->payload);
      continue;
    }
    // A syntactically valid frame the client has no business sending
    // (kResult and friends flow server -> client only).
    ++protocol_errors_;
    session->write(
        FrameType::kError,
        str("scope=connection error=",
            util::escape_line(str("unexpected frame type '",
                                  static_cast<char>(frame->type),
                                  "' from client"))));
    break;
  }

  // Drain: every submitted job delivers (or fails to, against a dead
  // peer) before the session answers kDone and closes. The scheduler owns
  // the jobs, so this never blocks it -- only this session thread waits.
  {
    std::unique_lock<std::mutex> lock(session->pending_mutex);
    session->pending_cv.wait(lock,
                             [&] { return session->outstanding == 0; });
  }
  std::uint64_t delivered = 0;
  {
    std::lock_guard<std::mutex> lock(session->write_mutex);
    delivered = session->delivered;
  }
  session->write(FrameType::kDone,
                      str("results=", delivered));
  {
    std::lock_guard<std::mutex> lock(session->write_mutex);
    session->dead = true;  // late callbacks count write failures, not I/O
    session->connection->close();
  }
}

void Solverd::handle_submit(const std::shared_ptr<Session>& session,
                            const std::string& payload) {
  std::istringstream lines(payload);
  std::string line;
  while (std::getline(lines, line)) {
    ++session->line_number;
    if (!options_.apply_set_lines) {
      std::istringstream probe(line);
      std::string first;
      if (probe >> first && first == "set") {
        ++parse_errors_;
        session->write(
            FrameType::kError,
            str("scope=frame error=",
                util::escape_line(str(session->source, ":",
                                      session->line_number,
                                      ": set lines are disabled on this "
                                      "daemon (--allow-set=0)"))));
        continue;
      }
    }
    JobSpec job;
    ManifestLineKind kind = ManifestLineKind::kBlank;
    try {
      kind = parse_manifest_line(line, session->source,
                                 session->line_number, &job);
    } catch (const InvalidArgument& e) {
      // One bad line answers one kError frame; the rest of the payload
      // still submits. Nothing here touches the lanes.
      ++parse_errors_;
      session->write(FrameType::kError,
                          str("scope=frame error=",
                              util::escape_line(e.what())));
      continue;
    }
    if (kind != ManifestLineKind::kJob) continue;

    const std::uint64_t id = ++session->next_job_id;
    std::shared_ptr<Session> strong = session;
    job.on_complete = [this, strong, id](const JobResult& result) {
      deliver(strong, id, result);
    };
    {
      std::lock_guard<std::mutex> lock(session->pending_mutex);
      ++session->outstanding;
    }
    ++jobs_;
    try {
      scheduler_.submit(std::move(job));
    } catch (const std::exception& e) {
      // submit() itself refused (scheduler not open -- a stop() race).
      // The callback never fires, so undo the outstanding count here.
      {
        std::lock_guard<std::mutex> lock(session->pending_mutex);
        --session->outstanding;
        session->pending_cv.notify_all();
      }
      session->write(FrameType::kError,
                          str("scope=frame error=",
                              util::escape_line(e.what())));
    }
  }
}

void Solverd::deliver(const std::shared_ptr<Session>& session,
                      std::uint64_t id, const JobResult& result) {
  // Runs on whichever thread finished the job (a lane, usually). Nothing
  // here may throw out: an escaped exception would be recorded as
  // callback_error, but worse, skipping the outstanding decrement would
  // wedge the session's drain forever.
  const FrameType type =
      result.shed ? FrameType::kBackpressure : FrameType::kResult;
  bool written = false;
  try {
    written = session->write(type, encode_result_line(id, result));
  } catch (...) {
    written = false;
  }
  if (written) {
    if (type == FrameType::kBackpressure) {
      ++backpressure_;
    } else {
      ++results_;
    }
  } else {
    ++write_failures_;
  }
  std::lock_guard<std::mutex> lock(session->pending_mutex);
  --session->outstanding;
  session->pending_cv.notify_all();
}

// ----------------------------------------------------------------- client --

SolverdClient::SolverdClient(std::unique_ptr<Connection> connection,
                             FrameLimits limits)
    : connection_(std::move(connection)), limits_(limits) {
  PSDP_CHECK(connection_ != nullptr, "solverd: client needs a connection");
}

bool SolverdClient::submit(std::string_view manifest_lines) {
  return write_frame(*connection_, FrameType::kSubmit, manifest_lines);
}

bool SolverdClient::goodbye() {
  return write_frame(*connection_, FrameType::kGoodbye, {});
}

std::optional<Frame> SolverdClient::read() {
  return read_frame(*connection_, limits_);
}

SolverdClient::Drain SolverdClient::drain() {
  goodbye();
  Drain out;
  while (std::optional<Frame> frame = read()) {
    switch (frame->type) {
      case FrameType::kResult:
        out.results.push_back(decode_result_line(frame->payload));
        break;
      case FrameType::kBackpressure:
        out.backpressure.push_back(decode_result_line(frame->payload));
        break;
      case FrameType::kError:
        out.errors.push_back(frame->payload);
        break;
      case FrameType::kDone:
        out.done = true;
        return out;
      default:
        break;  // client-direction frames echoed back: ignore
    }
  }
  return out;
}

}  // namespace psdp::serve
