#include "serve/scheduler.hpp"

#include <atomic>
#include <utility>

#include "par/parallel.hpp"
#include "util/timer.hpp"

namespace psdp::serve {

namespace {

/// Builder for a preloaded shared instance: a cache miss wraps the pointer
/// (and, for covering, performs the one-time normalization).
template <typename Wrap>
ArtifactCache::Builder wrap_builder(Wrap&& wrap) {
  return [wrap = std::forward<Wrap>(wrap)](
             const sparse::TransposePlanOptions&) { return wrap(); };
}

}  // namespace

std::size_t SolveBatch::add(JobSpec job) {
  PSDP_CHECK(!job.instance.empty(), "serve: job needs an instance key");
  PSDP_CHECK(job.builder != nullptr, "serve: job needs an instance builder");
  if (job.label.empty()) {
    job.label = str(job.instance, "#", jobs_.size());
  }
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

std::size_t SolveBatch::add_packing(
    std::string key, std::shared_ptr<const core::PackingInstance> instance,
    core::OptimizeOptions options, std::string label) {
  PSDP_CHECK(instance != nullptr, "serve: null instance");
  JobSpec job;
  job.instance = std::move(key);
  job.label = std::move(label);
  job.kind = JobKind::kPackingDense;
  job.options = std::move(options);
  job.builder = wrap_builder([instance] {
    PreparedInstance prepared;
    prepared.kind = JobKind::kPackingDense;
    prepared.packing = instance;
    return prepared;
  });
  PreparedInstance probe;
  probe.kind = job.kind;
  probe.packing = instance;
  job.work = probe.estimated_work();
  return add(std::move(job));
}

std::size_t SolveBatch::add_factorized(
    std::string key,
    std::shared_ptr<const core::FactorizedPackingInstance> instance,
    core::OptimizeOptions options, std::string label) {
  PSDP_CHECK(instance != nullptr, "serve: null instance");
  JobSpec job;
  job.instance = std::move(key);
  job.label = std::move(label);
  job.kind = JobKind::kPackingFactorized;
  job.options = std::move(options);
  job.builder = wrap_builder([instance] {
    PreparedInstance prepared;
    prepared.kind = JobKind::kPackingFactorized;
    prepared.factorized = instance;
    return prepared;
  });
  PreparedInstance probe;
  probe.kind = job.kind;
  probe.factorized = instance;
  job.work = probe.estimated_work();
  return add(std::move(job));
}

std::size_t SolveBatch::add_covering(
    std::string key, std::shared_ptr<const core::CoveringProblem> problem,
    core::OptimizeOptions options, std::string label) {
  PSDP_CHECK(problem != nullptr, "serve: null instance");
  JobSpec job;
  job.instance = std::move(key);
  job.label = std::move(label);
  job.kind = JobKind::kCovering;
  job.options = std::move(options);
  job.builder = wrap_builder([problem] {
    PreparedInstance prepared;
    prepared.kind = JobKind::kCovering;
    prepared.covering = problem;
    prepared.normalized = std::make_shared<const core::NormalizedProblem>(
        core::normalize(*problem));
    return prepared;
  });
  PreparedInstance probe;
  probe.kind = job.kind;
  probe.covering = problem;
  job.work = probe.estimated_work();
  return add(std::move(job));
}

std::size_t SolveBatch::add_lp(std::string key,
                               std::shared_ptr<const core::PackingLp> lp,
                               core::OptimizeOptions options,
                               std::string label) {
  PSDP_CHECK(lp != nullptr, "serve: null instance");
  JobSpec job;
  job.instance = std::move(key);
  job.label = std::move(label);
  job.kind = JobKind::kPackingLp;
  job.options = std::move(options);
  job.builder = wrap_builder([lp] {
    PreparedInstance prepared;
    prepared.kind = JobKind::kPackingLp;
    prepared.lp = lp;
    return prepared;
  });
  PreparedInstance probe;
  probe.kind = job.kind;
  probe.lp = lp;
  job.work = probe.estimated_work();
  return add(std::move(job));
}

BatchScheduler::BatchScheduler(SchedulerOptions options)
    : options_(std::move(options)), cache_(options_.cache) {}

void BatchScheduler::run_job(const JobSpec& spec, JobResult& result,
                             int lane) {
  result.instance = spec.instance;
  result.label = spec.label;
  result.kind = spec.kind;
  result.lane = lane;
  util::WallTimer timer;
  try {
    const ArtifactCache::Resolved resolved =
        cache_.get(spec.instance, spec.builder);
    result.cache_hit = resolved.hit;
    const PreparedInstance& prepared = resolved.entry->instance();
    PSDP_CHECK(prepared.kind == spec.kind,
               str("serve: job '", spec.label, "' expects ",
                   job_kind_name(spec.kind), " but instance '", spec.instance,
                   "' is prepared as ", job_kind_name(prepared.kind)));
    switch (spec.kind) {
      case JobKind::kPackingDense:
        result.packing = core::approx_packing(*prepared.packing, spec.options);
        break;
      case JobKind::kPackingFactorized: {
        // The pooled workspace: recycled scratch keeps the steady state
        // allocation-free without sharing buffers between concurrent jobs.
        WorkspaceLease lease(resolved.entry);
        core::OptimizeOptions options = spec.options;
        options.decision.workspace = lease.get();
        result.packing = core::approx_packing(*prepared.factorized, options);
        break;
      }
      case JobKind::kCovering:
        // The cached normalization: the per-instance O(m^3) eigensolve was
        // paid once at prepare time.
        result.covering =
            core::approx_covering(*prepared.normalized, spec.options);
        break;
      case JobKind::kPackingLp:
        result.lp = core::approx_packing_lp(*prepared.lp, spec.options);
        break;
    }
    result.ok = true;
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = e.what();
  } catch (...) {
    // Builders and callbacks are arbitrary user callables; even a
    // non-std exception must not escape into the lane batch (it would
    // fail every other job instead of this one).
    result.ok = false;
    result.error = "non-standard exception";
  }
  result.seconds = timer.seconds();
  if (spec.on_complete) {
    try {
      spec.on_complete(result);
    } catch (...) {
      // A throwing callback must not poison the lane batch (the result
      // it was handed is already recorded); swallowed by contract.
    }
  }
}

std::vector<JobResult> BatchScheduler::run(const SolveBatch& batch) {
  std::lock_guard<std::mutex> run_lock(run_mutex_);
  const std::vector<JobSpec>& jobs = batch.jobs();
  std::vector<JobResult> results(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) results[i].index = i;

  // Shard: narrow jobs pack onto lanes, wide jobs keep the full pool.
  std::vector<std::size_t> narrow;
  std::vector<std::size_t> wide;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    (jobs[i].work >= options_.wide_work ? wide : narrow).push_back(i);
  }

  if (!narrow.empty()) {
    const int lanes =
        options_.lanes > 0
            ? options_.lanes
            : static_cast<int>(std::min<std::size_t>(
                  narrow.size(),
                  static_cast<std::size_t>(par::num_threads())));
    // One pool batch of `lanes` tasks; each drains the shared queue. Jobs
    // inside a lane run their parallel regions inline (nested-region
    // rule), so each lane is one thread of job throughput. run_job never
    // throws (failures land in the result), so no lane can poison the
    // batch.
    std::atomic<std::size_t> next{0};
    const auto lane_body = [&](Index lane) {
      while (true) {
        const std::size_t at = next.fetch_add(1, std::memory_order_relaxed);
        if (at >= narrow.size()) return;
        const std::size_t job = narrow[at];
        run_job(jobs[job], results[job], static_cast<int>(lane));
      }
    };
    par::global_pool().run_batch(static_cast<Index>(lanes), lane_body);
  }

  // Wide jobs: one at a time, full pool width -- exactly a solo call.
  for (const std::size_t job : wide) {
    run_job(jobs[job], results[job], /*lane=*/-1);
  }
  return results;
}

std::future<std::vector<JobResult>> BatchScheduler::run_async(
    SolveBatch batch) {
  // A dedicated driver thread (not a pool worker): the driver submits lane
  // batches to the shared pool just as a synchronous caller would.
  return std::async(std::launch::async,
                    [this, batch = std::move(batch)] { return run(batch); });
}

}  // namespace psdp::serve
