#include "serve/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "par/parallel.hpp"
#include "util/timer.hpp"

namespace psdp::serve {

namespace {

/// Builder for a preloaded shared instance: a cache miss wraps the pointer
/// (and, for covering, performs the one-time normalization).
template <typename Wrap>
ArtifactCache::Builder wrap_builder(Wrap&& wrap) {
  return [wrap = std::forward<Wrap>(wrap)](
             const sparse::TransposePlanOptions&) { return wrap(); };
}

double to_seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

/// Nested preemption depth cap: an urgent job preempted by a still more
/// urgent one nests run_job frames on the lane's stack; three levels cover
/// every realistic priority/deadline ladder without unbounded recursion.
constexpr int kMaxPreemptDepth = 3;

}  // namespace

std::size_t SolveBatch::add(JobSpec job) {
  PSDP_CHECK(!job.instance.empty(), "serve: job needs an instance key");
  PSDP_CHECK(job.builder != nullptr, "serve: job needs an instance builder");
  if (job.label.empty()) {
    job.label = str(job.instance, "#", jobs_.size());
  }
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

std::size_t SolveBatch::add_packing(
    std::string key, std::shared_ptr<const core::PackingInstance> instance,
    core::OptimizeOptions options, std::string label) {
  PSDP_CHECK(instance != nullptr, "serve: null instance");
  JobSpec job;
  job.instance = std::move(key);
  job.label = std::move(label);
  job.kind = JobKind::kPackingDense;
  job.options = std::move(options);
  job.builder = wrap_builder([instance] {
    PreparedInstance prepared;
    prepared.kind = JobKind::kPackingDense;
    prepared.packing = instance;
    return prepared;
  });
  PreparedInstance probe;
  probe.kind = job.kind;
  probe.packing = instance;
  job.work = probe.estimated_work();
  return add(std::move(job));
}

std::size_t SolveBatch::add_factorized(
    std::string key,
    std::shared_ptr<const core::FactorizedPackingInstance> instance,
    core::OptimizeOptions options, std::string label) {
  PSDP_CHECK(instance != nullptr, "serve: null instance");
  JobSpec job;
  job.instance = std::move(key);
  job.label = std::move(label);
  job.kind = JobKind::kPackingFactorized;
  job.options = std::move(options);
  job.builder = wrap_builder([instance] {
    PreparedInstance prepared;
    prepared.kind = JobKind::kPackingFactorized;
    prepared.factorized = instance;
    return prepared;
  });
  PreparedInstance probe;
  probe.kind = job.kind;
  probe.factorized = instance;
  job.work = probe.estimated_work();
  return add(std::move(job));
}

std::size_t SolveBatch::add_covering(
    std::string key, std::shared_ptr<const core::CoveringProblem> problem,
    core::OptimizeOptions options, std::string label) {
  PSDP_CHECK(problem != nullptr, "serve: null instance");
  JobSpec job;
  job.instance = std::move(key);
  job.label = std::move(label);
  job.kind = JobKind::kCovering;
  job.options = std::move(options);
  job.builder = wrap_builder([problem] {
    PreparedInstance prepared;
    prepared.kind = JobKind::kCovering;
    prepared.covering = problem;
    prepared.normalized = std::make_shared<const core::NormalizedProblem>(
        core::normalize(*problem));
    return prepared;
  });
  PreparedInstance probe;
  probe.kind = job.kind;
  probe.covering = problem;
  job.work = probe.estimated_work();
  return add(std::move(job));
}

std::size_t SolveBatch::add_lp(std::string key,
                               std::shared_ptr<const core::PackingLp> lp,
                               core::OptimizeOptions options,
                               std::string label) {
  PSDP_CHECK(lp != nullptr, "serve: null instance");
  JobSpec job;
  job.instance = std::move(key);
  job.label = std::move(label);
  job.kind = JobKind::kPackingLp;
  job.options = std::move(options);
  job.builder = wrap_builder([lp] {
    PreparedInstance prepared;
    prepared.kind = JobKind::kPackingLp;
    prepared.lp = lp;
    return prepared;
  });
  PreparedInstance probe;
  probe.kind = job.kind;
  probe.lp = lp;
  job.work = probe.estimated_work();
  return add(std::move(job));
}

bool payload_bitwise_equal(const JobResult& a, const JobResult& b) {
  if (a.ok != b.ok) return false;
  if (!a.ok) return true;  // both failed: error text may name paths etc.
  if (a.kind != b.kind) return false;
  const auto vectors_equal = [](const linalg::Vector& x,
                                const linalg::Vector& y) {
    if (x.size() != y.size()) return false;
    for (Index i = 0; i < x.size(); ++i) {
      if (x[i] != y[i]) return false;
    }
    return true;
  };
  switch (a.kind) {
    case JobKind::kPackingDense:
    case JobKind::kPackingFactorized:
      return a.packing.lower == b.packing.lower &&
             a.packing.upper == b.packing.upper &&
             vectors_equal(a.packing.best_x, b.packing.best_x);
    case JobKind::kCovering:
      return a.covering.objective == b.covering.objective &&
             a.covering.lower_bound == b.covering.lower_bound &&
             a.covering.packing.lower == b.covering.packing.lower &&
             a.covering.packing.upper == b.covering.packing.upper;
    case JobKind::kPackingLp:
      return a.lp.lower == b.lp.lower && a.lp.upper == b.lp.upper &&
             vectors_equal(a.lp.best_x, b.lp.best_x);
  }
  return false;
}

/// One accepted job: its spec, its (in-place accumulated) result, and the
/// scheduling timestamps. Lives in the pointer-stable slots_ deque until the
/// job retires (result harvested into results_, callback delivered), then is
/// recycled for a later submission.
struct BatchScheduler::Slot {
  JobSpec spec;
  JobResult result;
  Clock::time_point enqueue;
  Clock::time_point deadline;  ///< valid when has_deadline
  bool has_deadline = false;
  Clock::time_point start;     ///< stamped when a lane claims the job
  bool wide = false;           ///< work >= wide_work: gang-scheduled
};

/// The per-job round-boundary check-in (yield_point.hpp). Runs on the lane
/// thread that owns the job, between oracle rounds, with no locks held:
///
///   1. demote a widened job back to inline execution if the queue refilled;
///   2. run every strictly-more-urgent waiting narrow job to completion,
///      inline, while the current solve stays parked on this stack;
///   3. promote to full pool width while the queue is empty and no wide
///      job holds the gang token.
///
/// None of this can change the parked or the borrowed job's bits: loop
/// partitioning depends only on the global par::num_threads().
class BatchScheduler::LaneYield final : public core::YieldPoint {
 public:
  LaneYield(BatchScheduler* scheduler, Slot* slot, int lane, int depth)
      : scheduler_(scheduler), slot_(slot), lane_(lane), depth_(depth) {}

  void check() override {
    BatchScheduler& s = *scheduler_;
    // Fast path: nothing waiting and nothing to demote -- at most the
    // promotion check below touches shared state, and only via atomics.
    if (promoted_ &&
        (s.waiting_count_.load(std::memory_order_relaxed) > 0 ||
         s.running_count_.load(std::memory_order_relaxed) > 1)) {
      // The queue refilled (or a peer started): hand the pool back,
      // return to one-thread inline execution.
      par::set_regions_inlined(true);
      promoted_ = false;
      std::lock_guard<std::mutex> lock(s.mutex_);
      ++s.stats_.demotions;
    }
    if (s.options_.preemption && depth_ < kMaxPreemptDepth &&
        s.waiting_count_.load(std::memory_order_relaxed) > 0) {
      while (Slot* urgent = s.claim_more_urgent(*slot_)) {
        ++slot_->result.preemptions;
        // The urgent job runs inline on this lane thread, to completion;
        // the parked solve's state waits on this stack and in its leased
        // workspace.
        par::ScopedRegionInline inline_guard(true);
        LaneYield nested(scheduler_, urgent, lane_, depth_ + 1);
        urgent->result.lane = lane_;
        s.run_job(urgent->spec, urgent->result, lane_, &nested);
        s.finish(*urgent);
      }
    }
    if (s.options_.widening && !slot_->wide && !promoted_ &&
        par::regions_inlined() &&
        s.waiting_count_.load(std::memory_order_relaxed) == 0 &&
        s.running_count_.load(std::memory_order_relaxed) == 1 &&
        !s.wide_active_hint_.load(std::memory_order_relaxed)) {
      // The queue drained and this is the sole runner: every other lane
      // is parked, so take the whole pool for the remaining rounds.
      par::set_regions_inlined(false);
      promoted_ = true;
      slot_->result.promoted = true;
      std::lock_guard<std::mutex> lock(s.mutex_);
      ++s.stats_.promotions;
    }
  }

 private:
  BatchScheduler* scheduler_;
  Slot* slot_;
  int lane_;
  int depth_;
  bool promoted_ = false;
};

BatchScheduler::BatchScheduler(SchedulerOptions options)
    : options_(std::move(options)), cache_(options_.cache) {}

BatchScheduler::~BatchScheduler() {
  // A session left open (close() never called) must not leak running
  // threads; drain and join exactly as close() would.
  if (session_open_) close();
}

bool BatchScheduler::more_urgent(const Slot& a, const Slot& b) const {
  if (options_.queue == QueuePolicy::kFifo) {
    return a.result.index < b.result.index;
  }
  if (a.spec.priority != b.spec.priority) {
    return a.spec.priority > b.spec.priority;
  }
  if (a.has_deadline != b.has_deadline) return a.has_deadline;
  if (a.has_deadline && a.deadline != b.deadline) {
    return a.deadline < b.deadline;
  }
  return a.result.index < b.result.index;
}

BatchScheduler::Slot* BatchScheduler::claim_next_locked() {
  Slot* best = nullptr;
  std::size_t best_at = 0;
  for (std::size_t i = 0; i < waiting_.size(); ++i) {
    Slot* s = waiting_[i];
    if (s->wide && wide_active_) continue;  // gang token held
    if (best == nullptr || more_urgent(*s, *best)) {
      best = s;
      best_at = i;
    }
  }
  if (best == nullptr) return nullptr;
  waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(best_at));
  waiting_count_.store(waiting_.size(), std::memory_order_relaxed);
  if (best->wide) {
    wide_active_ = true;
    wide_active_hint_.store(true, std::memory_order_relaxed);
  }
  running_count_.fetch_add(1, std::memory_order_relaxed);
  best->start = Clock::now();
  best->result.queue_seconds = to_seconds(best->start - best->enqueue);
  return best;
}

BatchScheduler::Slot* BatchScheduler::claim_more_urgent(const Slot& running) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot* best = nullptr;
  std::size_t best_at = 0;
  for (std::size_t i = 0; i < waiting_.size(); ++i) {
    Slot* s = waiting_[i];
    if (s->wide) continue;  // never borrow a lane for a wide job
    if (!more_urgent(*s, running)) continue;
    if (best == nullptr || more_urgent(*s, *best)) {
      best = s;
      best_at = i;
    }
  }
  if (best == nullptr) return nullptr;
  waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(best_at));
  waiting_count_.store(waiting_.size(), std::memory_order_relaxed);
  running_count_.fetch_add(1, std::memory_order_relaxed);
  best->start = Clock::now();
  best->result.queue_seconds = to_seconds(best->start - best->enqueue);
  ++stats_.preemptions;
  return best;
}

void BatchScheduler::run_job(const JobSpec& spec, JobResult& result, int lane,
                             core::YieldPoint* yield) {
  result.lane = lane;
  try {
    const ArtifactCache::Resolved resolved =
        cache_.get(spec.instance, spec.builder);
    result.cache_hit = resolved.hit;
    const PreparedInstance& prepared = resolved.entry->instance();
    PSDP_CHECK(prepared.kind == spec.kind,
               str("serve: job '", spec.label, "' expects ",
                   job_kind_name(spec.kind), " but instance '", spec.instance,
                   "' is prepared as ", job_kind_name(prepared.kind)));
    // The scheduler's round-boundary check-in rides into every solver
    // variant through the decision options (probe_schedule_options copies
    // it into the phased/bucketed probe configs).
    core::OptimizeOptions options = spec.options;
    options.decision.yield = yield;
    switch (spec.kind) {
      case JobKind::kPackingDense:
        result.packing = core::approx_packing(*prepared.packing, options);
        break;
      case JobKind::kPackingFactorized: {
        // The pooled workspace: recycled scratch keeps the steady state
        // allocation-free without sharing buffers between concurrent jobs.
        WorkspaceLease lease(resolved.entry);
        options.decision.workspace = lease.get();
        result.packing = core::approx_packing(*prepared.factorized, options);
        break;
      }
      case JobKind::kCovering:
        // The cached normalization: the per-instance O(m^3) eigensolve was
        // paid once at prepare time.
        result.covering =
            core::approx_covering(*prepared.normalized, options);
        break;
      case JobKind::kPackingLp:
        result.lp = core::approx_packing_lp(*prepared.lp, options);
        break;
    }
    result.ok = true;
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = e.what();
  } catch (...) {
    // Builders and callbacks are arbitrary user callables; even a
    // non-std exception must not escape into the lane (it would take the
    // whole lane thread down instead of this job).
    result.ok = false;
    result.error = "non-standard exception";
  }
}

void BatchScheduler::invoke_callback(Slot& slot) {
  if (!slot.spec.on_complete) return;
  try {
    slot.spec.on_complete(slot.result);
  } catch (const std::exception& e) {
    // A throwing callback cannot fail the job (its result is already
    // recorded) -- but it must not be silently swallowed either: the
    // failure is reported through callback_error.
    slot.result.callback_error = e.what();
  } catch (...) {
    slot.result.callback_error = "non-standard exception";
  }
}

void BatchScheduler::finish(Slot& slot) {
  const Clock::time_point now = Clock::now();
  slot.result.run_seconds = to_seconds(now - slot.start);
  slot.result.seconds = slot.result.run_seconds;
  if (slot.has_deadline) slot.result.deadline_met = now <= slot.deadline;
  running_count_.fetch_sub(1, std::memory_order_relaxed);
  invoke_callback(slot);
  const bool release_token = slot.wide;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.completed;
    if (slot.has_deadline && !slot.result.deadline_met) {
      ++stats_.deadline_misses;
    }
    if (release_token) {
      wide_active_ = false;
      wide_active_hint_.store(false, std::memory_order_relaxed);
    }
    retire_locked(slot);
  }
  // Lanes may be sleeping on the gang token; wake them now that it is
  // free (narrow finishes wake nobody -- a waiting lane only sleeps when
  // there is nothing it could run).
  if (release_token) work_cv_.notify_all();
}

void BatchScheduler::execute(Slot& slot, int lane) {
  LaneYield yield(this, &slot, lane, /*depth=*/0);
  if (slot.wide) {
    // Gang-scheduled: regions fan out to the shared pool at full width,
    // exactly as a solo call would; reported as lane -1.
    run_job(slot.spec, slot.result, /*lane=*/-1, &yield);
  } else {
    // Narrow: every region runs inline, so this job occupies exactly one
    // thread -- until the yield point promotes it.
    par::ScopedRegionInline inline_guard(true);
    run_job(slot.spec, slot.result, lane, &yield);
  }
}

void BatchScheduler::lane_loop(int lane) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [&] { return closing_ || !waiting_.empty(); });
    if (waiting_.empty()) {
      if (closing_) return;
      continue;  // spurious / raced wakeup
    }
    Slot* slot = claim_next_locked();
    if (slot == nullptr) {
      // Only wide jobs remain and the gang token is held: sleep until the
      // token frees, new work arrives, or the scheduler closes (all three
      // notify under mutex_, so no wakeup can be lost).
      work_cv_.wait(lock);
      continue;
    }
    lock.unlock();
    execute(*slot, lane);
    finish(*slot);
    lock.lock();
  }
}

void BatchScheduler::open(int lanes) {
  std::unique_lock<std::mutex> run_lock(run_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PSDP_CHECK(!session_open_, "serve: scheduler session already open");
    session_open_ = true;
    closing_ = false;
    slots_.clear();
    free_slots_.clear();
    results_.clear();
    submitted_ = 0;
    waiting_.clear();
    waiting_count_.store(0, std::memory_order_relaxed);
    running_count_.store(0, std::memory_order_relaxed);
    wide_active_ = false;
    wide_active_hint_.store(false, std::memory_order_relaxed);
  }
  const int n = lanes > 0 ? lanes : par::num_threads();
  lane_threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    lane_threads_.emplace_back([this, i] { lane_loop(i); });
  }
  run_lock_ = std::move(run_lock);
}

std::size_t BatchScheduler::submit(JobSpec job) {
  PSDP_CHECK(!job.instance.empty(), "serve: job needs an instance key");
  PSDP_CHECK(job.builder != nullptr, "serve: job needs an instance builder");
  Slot* shed_slot = nullptr;
  std::size_t index = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PSDP_CHECK(session_open_ && !closing_,
               "serve: submit() needs an open scheduler");
    index = submitted_++;
    results_.emplace_back();  // terminal home, filled when the job retires
    Slot* reused = nullptr;
    if (!free_slots_.empty()) {
      reused = free_slots_.back();
      free_slots_.pop_back();
      *reused = Slot{};
      ++stats_.slots_recycled;
    } else {
      slots_.emplace_back();
      reused = &slots_.back();
    }
    Slot& slot = *reused;
    slot.spec = std::move(job);
    if (slot.spec.label.empty()) {
      slot.spec.label = str(slot.spec.instance, "#", index);
    }
    slot.result.index = index;
    slot.result.instance = slot.spec.instance;
    slot.result.label = slot.spec.label;
    slot.result.kind = slot.spec.kind;
    slot.result.deadline_ms = slot.spec.deadline_ms;
    slot.enqueue = Clock::now();
    // An engaged optional is a deadline, zero included: deadline-ms=0 means
    // "due immediately" (front of its priority class under EDF, and
    // deadline_met almost surely false), not "no deadline" -- the unset
    // state is the optional being empty, so an explicit 0 can no longer
    // silently disable the deadline.
    slot.has_deadline = slot.spec.deadline_ms.has_value();
    if (slot.has_deadline) {
      slot.deadline =
          slot.enqueue + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 *slot.spec.deadline_ms));
    }
    slot.wide = slot.spec.work >= options_.wide_work;

    // Admission control: the bound applies to *waiting* jobs only.
    if (options_.max_queue > 0 && waiting_.size() >= options_.max_queue) {
      if (options_.admission == AdmissionPolicy::kShedLowest) {
        // Shed the least urgent waiting job if the arrival outranks it;
        // otherwise the arrival itself is shed.
        Slot* worst = nullptr;
        std::size_t worst_at = 0;
        for (std::size_t i = 0; i < waiting_.size(); ++i) {
          if (worst == nullptr || more_urgent(*worst, *waiting_[i])) {
            worst = waiting_[i];
            worst_at = i;
          }
        }
        if (worst != nullptr && more_urgent(slot, *worst)) {
          waiting_.erase(waiting_.begin() +
                         static_cast<std::ptrdiff_t>(worst_at));
          shed_locked(*worst, "shed: displaced by a more urgent arrival");
          shed_slot = worst;
        } else {
          shed_locked(slot, "shed: queue full");
          shed_slot = &slot;
        }
      } else {
        shed_locked(slot, "rejected: queue full");
        shed_slot = &slot;
      }
    }
    if (shed_slot != &slot) {
      waiting_.push_back(&slot);
      waiting_count_.store(waiting_.size(), std::memory_order_relaxed);
      stats_.peak_queue = std::max(stats_.peak_queue, waiting_.size());
    }
  }
  work_cv_.notify_all();
  // The shed job's callback fires outside the lock (it is user code); the
  // slot retires right after -- the callback was its last use.
  if (shed_slot != nullptr) {
    invoke_callback(*shed_slot);
    std::lock_guard<std::mutex> lock(mutex_);
    retire_locked(*shed_slot);
  }
  return index;
}

void BatchScheduler::retire_locked(Slot& slot) {
  const std::size_t index = slot.result.index;
  results_[index] = std::move(slot.result);
  free_slots_.push_back(&slot);
}

void BatchScheduler::shed_locked(Slot& slot, const char* why) {
  slot.result.ok = false;
  slot.result.shed = true;
  slot.result.error = why;
  slot.result.queue_seconds = to_seconds(Clock::now() - slot.enqueue);
  if (slot.has_deadline) slot.result.deadline_met = false;
  waiting_count_.store(waiting_.size(), std::memory_order_relaxed);
  ++stats_.shed;
}

std::vector<JobResult> BatchScheduler::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PSDP_CHECK(session_open_, "serve: close() needs an open scheduler");
    closing_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : lane_threads_) t.join();
  lane_threads_.clear();

  std::vector<JobResult> results;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Every job retired at finish/shed time, so results_ is complete and
    // already in submission order.
    results = std::move(results_);
    results_.clear();
    slots_.clear();
    free_slots_.clear();
    submitted_ = 0;
    waiting_.clear();
    waiting_count_.store(0, std::memory_order_relaxed);
    session_open_ = false;
    closing_ = false;
  }
  run_lock_.unlock();
  return results;
}

std::vector<JobResult> BatchScheduler::run(const SolveBatch& batch) {
  if (batch.empty()) return {};
  const int lanes =
      options_.lanes > 0
          ? options_.lanes
          : static_cast<int>(std::min<std::size_t>(
                batch.size(), static_cast<std::size_t>(par::num_threads())));
  open(lanes);
  for (const JobSpec& job : batch.jobs()) submit(job);
  return close();
}

std::future<std::vector<JobResult>> BatchScheduler::run_async(
    SolveBatch batch) {
  // A dedicated driver thread (not a pool worker): the driver opens and
  // closes the session just as a synchronous caller would.
  return std::async(std::launch::async,
                    [this, batch = std::move(batch)] { return run(batch); });
}

SchedulerStats BatchScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SchedulerStats out = stats_;
  out.slots_live = slots_.size();
  return out;
}

}  // namespace psdp::serve
