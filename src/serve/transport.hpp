// The solverd transport seam: a byte-stream Connection/Listener interface,
// the frame codec on top of it, and two implementations --
//
//   * LoopbackListener: an in-process transport over mutex/cv byte pipes.
//     It runs the daemon's full framing/dispatch/streaming path with no OS
//     sockets, so integration and fault-injection tests are deterministic
//     and CI-safe (tests/test_solverd.cpp drives every protocol behavior
//     through it, including torn frames and mid-stream disconnects).
//   * SocketListener / socket_connect: real POSIX sockets for production
//     use -- a Unix-domain socket ("unix:/path/to.sock", the default for a
//     bare path) or TCP ("tcp:host:port").
//
// The daemon (serve/solverd.hpp) is written entirely against Connection and
// Listener; which transport backs a deployment is the caller's choice, and
// nothing above this seam can tell the difference. That is the point: every
// network behavior -- framing, streaming, backpressure, drain, disconnects
// -- is testable without a network.
//
// Wire framing (docs/SOLVERD.md has the full protocol):
//
//   frame := header(8 bytes) payload(header.length bytes)
//   header: bytes 0-1  magic "Ps"
//           byte  2    frame type (FrameType, an ASCII letter)
//           byte  3    reserved, 0
//           bytes 4-7  payload length, unsigned 32-bit little-endian
//
// read_frame() distinguishes a clean end of stream (EOF exactly at a frame
// boundary: returns nullopt) from a torn frame (EOF mid-header or
// mid-payload), a bad magic, an unknown type, and an oversized payload --
// all of which throw ProtocolError and poison the stream (there is no way
// to resynchronize a byte stream after a framing error).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "util/common.hpp"

namespace psdp::serve {

/// A framing-level failure: torn frame, bad magic, unknown frame type, or a
/// payload over the negotiated limit. Fatal to the connection that raised
/// it (the stream cannot be resynchronized), never to the daemon.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

/// One bidirectional byte stream. Implementations must support concurrent
/// use by one reader thread and one writer thread (the daemon reads frames
/// on the session thread while scheduler lanes write results).
class Connection {
 public:
  virtual ~Connection() = default;

  /// Read up to `max` bytes into `out`; blocks until at least one byte is
  /// available. Returns the byte count, or 0 at end of stream (peer closed
  /// or shutdown_read() was called on this endpoint).
  virtual std::size_t read_some(char* out, std::size_t max) = 0;

  /// Write all of `data`. Returns false when the peer is gone (the write
  /// is dropped); never throws and never raises SIGPIPE -- a dead client
  /// must not take a scheduler lane down with it.
  virtual bool write_all(const char* data, std::size_t size) = 0;

  /// Stop reading: pending and future read_some() calls on THIS endpoint
  /// return 0. Writes (result flushing) stay open -- this is the daemon's
  /// graceful-drain half-close.
  virtual void shutdown_read() = 0;

  /// Full close: both directions. The peer sees end of stream; its writes
  /// start failing.
  virtual void close() = 0;
};

/// Accepts connections for a daemon. accept() blocks; shutdown() unblocks
/// it (returning nullptr) and refuses further connections.
class Listener {
 public:
  virtual ~Listener() = default;

  /// The next inbound connection, or nullptr once shutdown() was called.
  virtual std::unique_ptr<Connection> accept() = 0;

  /// Unblock accept() and refuse further connections. Idempotent and
  /// callable from any thread (this is how Solverd::stop() interrupts the
  /// accept loop).
  virtual void shutdown() = 0;

  /// Human-readable endpoint name for logs and error sources.
  virtual std::string name() const = 0;
};

// ---------------------------------------------------------------- framing --

enum class FrameType : char {
  // client -> server
  kSubmit = 'S',    ///< payload: manifest job / `set` lines, '\n'-separated
  kGoodbye = 'Q',   ///< no payload: done submitting, drain and finish
  // server -> client
  kResult = 'R',        ///< payload: one result line (serve/solverd.hpp codec)
  kBackpressure = 'B',  ///< payload: a shed/rejected job (admission control)
  kError = 'E',         ///< payload: "scope=<frame|connection> error=<text>"
  kDone = 'D',          ///< payload: "results=<n>": drain complete, closing
};

struct Frame {
  FrameType type = FrameType::kSubmit;
  std::string payload;
};

struct FrameLimits {
  /// Largest accepted payload. Oversized inbound frames raise ProtocolError
  /// before any payload byte is read, so a hostile length cannot force an
  /// allocation.
  std::size_t max_payload = 1u << 20;
};

/// Size of the fixed frame header.
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Read exactly one frame. Returns nullopt on a clean end of stream (EOF
/// before the first header byte); throws ProtocolError on a torn frame,
/// bad magic, unknown frame type, or a payload over `limits.max_payload`.
std::optional<Frame> read_frame(Connection& connection,
                                const FrameLimits& limits = {});

/// Write one frame. Returns false when the peer is gone (like write_all).
/// Throws InvalidArgument if the payload exceeds the u32 length field.
bool write_frame(Connection& connection, FrameType type,
                 std::string_view payload);

// --------------------------------------------------------------- loopback --

/// In-process transport: connect() hands the client endpoint back and
/// queues the server endpoint for accept(). Byte streams are mutex/cv
/// pipes; partial writes, half-closes and disconnects behave exactly like
/// their socket counterparts, minus the OS.
class LoopbackListener final : public Listener {
 public:
  LoopbackListener();
  ~LoopbackListener() override;

  /// Create a connected pair; returns the client endpoint (the server
  /// endpoint becomes the next accept() result). Throws InvalidArgument
  /// after shutdown().
  std::unique_ptr<Connection> connect();

  std::unique_ptr<Connection> accept() override;
  void shutdown() override;
  std::string name() const override { return "loopback"; }

 private:
  struct State;
  std::shared_ptr<State> state_;
};

/// A connected loopback pair without a listener -- the unit-test harness
/// for the frame codec itself.
std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
loopback_pair();

// ---------------------------------------------------------------- sockets --

/// POSIX socket listener. Endpoint syntax:
///   "unix:/path/to.sock"  Unix-domain socket (the path is unlinked first);
///   "tcp:host:port"       IPv4 TCP ("tcp::port" binds INADDR_ANY);
///   anything else         treated as a bare Unix-socket path.
class SocketListener final : public Listener {
 public:
  explicit SocketListener(const std::string& endpoint);
  ~SocketListener() override;

  std::unique_ptr<Connection> accept() override;
  void shutdown() override;
  std::string name() const override { return endpoint_; }

 private:
  std::string endpoint_;
  std::string unlink_path_;  ///< bound unix-socket path, removed on destroy
  int fd_ = -1;
  int wake_read_ = -1;   ///< self-pipe: shutdown() wakes the accept poll
  int wake_write_ = -1;
};

/// Connect to a SocketListener endpoint (same syntax). Throws
/// InvalidArgument when the endpoint is malformed or unreachable.
std::unique_ptr<Connection> socket_connect(const std::string& endpoint);

}  // namespace psdp::serve
