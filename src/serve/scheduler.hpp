// The batch solve service: many instances (or many configurations of one
// instance), scheduled latency-aware over the existing par thread pool.
//
// The repo's entry points solve exactly one instance per call; a serving
// deployment answers streams of heterogeneous jobs with deadlines.
// SolveBatch collects jobs (instance + OptimizeOptions + priority/deadline
// + optional completion callback); BatchScheduler runs them over a set of
// *lane threads* that drain a priority/EDF queue:
//
//   * NARROW jobs (work below SchedulerOptions::wide_work) run one per
//     lane with every parallel region executed inline on the lane thread
//     (par::ScopedRegionInline) -- a lane occupies exactly one thread
//     however many regions the solver opens, so pool width turns into job
//     throughput, exactly as the PR-5 static sharding did.
//   * WIDE jobs gang-schedule: one at a time (an exclusive token), with
//     regions dispatched to the shared pool at full width, exactly as a
//     solo call would.
//   * PREEMPTION: each running job carries a core::YieldPoint checked at
//     oracle-round boundaries. When a strictly more urgent narrow job is
//     waiting (higher priority, then earlier deadline), the lane parks the
//     current solve -- its state stays on this thread's stack and in its
//     leased SolverWorkspace -- runs the urgent job to completion inline,
//     and resumes. Elephants yield to mice between rounds.
//   * DYNAMIC LANE WIDENING: when the queue drains AND a narrow job is
//     the only one still running (idle lanes are parked on the condition
//     variable), it *promotes* at its next round boundary -- the inline
//     flag flips off, so subsequent regions run at full pool width (the
//     mechanism that attacks the "batch mode multiplies per-job latency
//     by the lane count" tail). The job demotes back to inline execution
//     as soon as the queue refills or another job starts; promoting while
//     peers still run would only oversubscribe the machine.
//   * ADMISSION CONTROL: with max_queue set, a full queue either rejects
//     the incoming job or sheds the least urgent waiting one
//     (AdmissionPolicy); either outcome is recorded in JobResult::shed.
//
// Determinism: all of the above reorders which job runs when and *where*
// its regions execute -- never the bits a job computes. Loop partitioning
// (and parallel_reduce's chunk-order combine) depends only on the global
// par::num_threads(), so a job's results are bitwise identical to a solo
// run at the same pool width whether it ran inline on a lane, promoted to
// full width mid-solve, or was preempted between rounds (verified by
// bench_serve, bench_load and tests/test_serve.cpp).
//
// Artifacts are shared through the ArtifactCache (artifact_cache.hpp); a
// job that throws reports through JobResult::error and the batch always
// runs to completion.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/optimize.hpp"
#include "core/poslp.hpp"
#include "serve/artifact_cache.hpp"

namespace psdp::serve {

struct JobResult;  // declared below JobSpec, which carries its callback

/// One solve request: which prepared instance (by cache key + builder),
/// which solver configuration, how urgent it is, and how to report back.
struct JobSpec {
  /// ArtifactCache key -- jobs sharing it share every prepared artifact.
  std::string instance;
  /// Display label; defaults to "<instance>#<index>" when empty.
  std::string label;
  JobKind kind = JobKind::kPackingFactorized;
  /// Builds the instance when `instance` misses the cache. Required.
  ArtifactCache::Builder builder;
  /// Solver configuration (eps, probe_solver, decision knobs...). The
  /// factorized path's workspace pointer is overwritten with the job's
  /// pooled lease, and decision.yield with the scheduler's round-boundary
  /// check-in.
  core::OptimizeOptions options;
  /// Estimated per-iteration work; >= SchedulerOptions::wide_work runs the
  /// job at full pool width instead of inside a lane. 0 = narrow. The
  /// add_* helpers fill this from PreparedInstance::estimated_work().
  Index work = 0;
  /// Scheduling priority: higher runs first; ties broken by deadline
  /// (earlier first), then submission order.
  int priority = 0;
  /// Relative deadline in milliseconds from submission; nullopt = no
  /// deadline, 0 = due immediately (maximally urgent, and deadline_met
  /// will report whether it somehow finished in time -- an unset and a
  /// zero deadline are distinct states, not aliases). Under
  /// QueuePolicy::kEdf the queue orders by the resulting absolute
  /// deadline within a priority class; JobResult::deadline_met reports
  /// whether the job finished in time (deadlines steer scheduling, they
  /// never abort a solve).
  std::optional<double> deadline_ms;
  /// Invoked right after the job finishes (or is shed), on whichever
  /// thread ran it (lane threads included) -- keep it cheap and
  /// thread-safe. A throwing callback cannot fail the batch: its
  /// exception is recorded in JobResult::callback_error and the job still
  /// counts as succeeded.
  std::function<void(const JobResult&)> on_complete;
};

/// Everything one job produced. Exactly one of the payload fields matching
/// `kind` is meaningful when ok.
struct JobResult {
  std::size_t index = 0;  ///< position in the batch / submission order
  std::string instance;
  std::string label;
  JobKind kind = JobKind::kPackingFactorized;
  bool ok = false;
  std::string error;      ///< what() of the failure when !ok
  bool shed = false;      ///< dropped by admission control (never started)
  double seconds = 0;       ///< == run_seconds (kept for compatibility)
  double queue_seconds = 0; ///< wall clock from submission to first start
  double run_seconds = 0;   ///< wall clock from first start to finish
                            ///< (artifact resolve + solve; includes time
                            ///< parked while preempted)
  std::optional<double> deadline_ms;  ///< echo of JobSpec::deadline_ms
  bool deadline_met = true; ///< false iff a deadline was set and missed
  bool cache_hit = false; ///< artifacts served without running the builder
  int lane = -1;          ///< lane that ran it; -1 = full-width (wide) job
  int preemptions = 0;    ///< times this job yielded to a more urgent one
  bool promoted = false;  ///< widened to full pool width mid-run
  std::string callback_error;  ///< what() of a throwing on_complete
  core::PackingOptimum packing;    ///< kPackingDense / kPackingFactorized
  core::CoveringOptimum covering;  ///< kCovering
  core::LpOptimum lp;              ///< kPackingLp
};

/// True when two results of the same kind carry bitwise-identical solver
/// payloads (bounds, certificate vectors, iteration counts) -- the
/// lane-vs-solo identity predicate shared by bench_serve, bench_load and
/// the tests. Scheduling metadata (lane, timing, preemptions) is ignored.
bool payload_bitwise_equal(const JobResult& a, const JobResult& b);

/// An ordered collection of jobs submitted as one unit.
class SolveBatch {
 public:
  /// Append a fully-specified job; returns its index (== result index).
  std::size_t add(JobSpec job);

  /// Convenience adders for preloaded shared instances: the builder wraps
  /// the pointer (so a cache miss costs nothing but bookkeeping), `work`
  /// is derived from the instance, and `kind` is set for you.
  std::size_t add_packing(std::string key,
                          std::shared_ptr<const core::PackingInstance> instance,
                          core::OptimizeOptions options = {},
                          std::string label = "");
  std::size_t add_factorized(
      std::string key,
      std::shared_ptr<const core::FactorizedPackingInstance> instance,
      core::OptimizeOptions options = {}, std::string label = "");
  std::size_t add_covering(std::string key,
                           std::shared_ptr<const core::CoveringProblem> problem,
                           core::OptimizeOptions options = {},
                           std::string label = "");
  std::size_t add_lp(std::string key,
                     std::shared_ptr<const core::PackingLp> lp,
                     core::OptimizeOptions options = {},
                     std::string label = "");

  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }
  const std::vector<JobSpec>& jobs() const { return jobs_; }
  std::vector<JobSpec>& jobs() { return jobs_; }

 private:
  std::vector<JobSpec> jobs_;
};

/// Queue discipline for waiting jobs.
enum class QueuePolicy {
  kFifo,  ///< submission order (the PR-5 static-sharding baseline)
  kEdf,   ///< priority desc, then earliest absolute deadline, then FIFO
};

/// What happens to an arrival when the queue is at max_queue.
enum class AdmissionPolicy {
  kReject,      ///< the arrival is shed
  kShedLowest,  ///< the least urgent *waiting* job is shed if the arrival
                ///< is more urgent; otherwise the arrival is shed
};

struct SchedulerOptions {
  /// Concurrent lane threads draining the queue. 0 = auto: for run(),
  /// min(batch size, par::num_threads()); for open(), par::num_threads().
  /// Defaulted from the tunable registry (`lanes`, default 0).
  int lanes = static_cast<int>(util::tunable_lanes());
  /// JobSpec::work at or above this runs at full pool width, alone.
  /// Defaulted from the tunable registry (`wide_work`, default 2^26).
  Index wide_work = util::tunable_wide_work();
  /// Artifact-cache sizing and transpose-plan build options.
  ArtifactCache::Options cache;
  /// Waiting-job order. kEdf is the latency-aware default; kFifo
  /// reproduces the PR-5 baseline schedule.
  QueuePolicy queue = QueuePolicy::kEdf;
  /// Admission bound on *waiting* jobs (running jobs excluded); 0 =
  /// unbounded.
  std::size_t max_queue = 0;
  /// Applied when an arrival finds the queue at max_queue.
  AdmissionPolicy admission = AdmissionPolicy::kReject;
  /// Allow a lane to park its job at a round boundary and run a strictly
  /// more urgent waiting narrow job first.
  bool preemption = true;
  /// Allow a narrow job to widen to full pool width at a round boundary
  /// while the queue is empty (and demote when it refills).
  bool widening = true;
};

/// Scheduling counters accumulated across a scheduler's lifetime.
struct SchedulerStats {
  std::uint64_t preemptions = 0;  ///< urgent jobs run inside a parked one
  std::uint64_t promotions = 0;   ///< narrow jobs widened to full width
  std::uint64_t demotions = 0;    ///< widened jobs returned to a lane
  std::uint64_t shed = 0;         ///< jobs dropped by admission control
  std::uint64_t completed = 0;    ///< jobs finished (ok or failed)
  std::uint64_t deadline_misses = 0;  ///< finished after their deadline
  std::size_t peak_queue = 0;     ///< max waiting-job count observed
  /// Slot-recycling counters: slots_live is the slot arena's current size
  /// (bounded by concurrent jobs, not total submissions -- the 10k-job
  /// regression test asserts this), slots_recycled counts retired slots
  /// reused for later submissions.
  std::size_t slots_live = 0;
  std::uint64_t slots_recycled = 0;
};

/// The batch executor. One scheduler owns one ArtifactCache, so artifacts
/// persist across run() calls: a warm scheduler serves repeat batches with
/// zero instance preparation.
///
/// Two faces over one engine:
///   * run(batch) / run_async(batch): submit every job at once, block (or
///     future-wait) for all results -- the PR-5 interface.
///   * open() / submit(job) / close(): streaming arrivals. submit() is
///     callable from any thread while open; queue_seconds measures real
///     queueing from the submission instant. close() drains and returns
///     results in submission order.
class BatchScheduler {
 public:
  explicit BatchScheduler(SchedulerOptions options = {});
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Run every job; returns results indexed like the batch. Blocks until
  /// the batch is drained. Call from a non-worker thread. Job failures
  /// land in JobResult::error; infrastructure failures (a builder
  /// throwing) fail the affected jobs, never the batch.
  std::vector<JobResult> run(const SolveBatch& batch);

  /// run() on a detached driver thread; the future carries the results.
  /// The batch is moved into the driver. Per-job on_complete callbacks
  /// remain the streaming interface; the future is the terminal barrier.
  std::future<std::vector<JobResult>> run_async(SolveBatch batch);

  /// Start `lanes` lane threads (0 = auto) and accept submissions. Call
  /// open() and close() from the same thread (they bracket the scheduler's
  /// one-session-at-a-time lock); submit() may come from any thread.
  void open(int lanes = 0);
  /// Enqueue one job; returns its result index. The job may be shed
  /// immediately by admission control (its on_complete still fires).
  /// Requires an open scheduler.
  std::size_t submit(JobSpec job);
  /// Stop accepting, drain every queued job, join the lanes, and return
  /// all results (shed ones included) in submission order.
  std::vector<JobResult> close();

  ArtifactCache& cache() { return cache_; }
  const SchedulerOptions& options() const { return options_; }
  SchedulerStats stats() const;

 private:
  struct Slot;
  class LaneYield;
  friend class LaneYield;

  using Clock = std::chrono::steady_clock;

  void lane_loop(int lane);
  /// Most urgent runnable waiting job (skips wide jobs while the wide
  /// token is held); nullptr when none. Caller holds mutex_; the slot is
  /// removed from waiting_ and stamped as started.
  Slot* claim_next_locked();
  /// Strictly-more-urgent-than-`running` narrow waiting job, claimed and
  /// stamped; nullptr when none. Takes mutex_ internally.
  Slot* claim_more_urgent(const Slot& running);
  /// True when a is scheduled before b under options_.queue.
  bool more_urgent(const Slot& a, const Slot& b) const;
  void execute(Slot& slot, int lane);
  void run_job(const JobSpec& spec, JobResult& result, int lane,
               core::YieldPoint* yield);
  void finish(Slot& slot);
  void shed_locked(Slot& slot, const char* why);
  void invoke_callback(Slot& slot);
  /// Move the slot's result into results_ (its terminal home) and push the
  /// slot onto the free list for reuse by a later submission. Called with
  /// mutex_ held, after the callback fired -- the last use of the slot.
  void retire_locked(Slot& slot);

  SchedulerOptions options_;
  ArtifactCache cache_;
  std::mutex run_mutex_;  ///< one batch / open-close session at a time
  std::unique_lock<std::mutex> run_lock_;  ///< held while a session is open

  mutable std::mutex mutex_;            ///< queue + stats + lifecycle state
  std::condition_variable work_cv_;     ///< lanes: new work, token, closing
  /// Pointer-stable slot arena. Slots are RECYCLED: when a job retires
  /// (finished or shed, callback delivered, result moved to results_) its
  /// slot joins free_slots_ and serves a later submission, so the arena's
  /// size tracks the number of in-flight jobs -- lanes plus queue -- not
  /// the session's total submissions. A streaming session of 10k jobs
  /// keeps a handful of slots live (test_serve locks this); pointers held
  /// by waiting_/lanes stay valid because retirement strictly follows the
  /// last use.
  std::deque<Slot> slots_;
  std::vector<Slot*> free_slots_;       ///< retired slots awaiting reuse
  std::size_t submitted_ = 0;           ///< submission-order index counter
  std::vector<JobResult> results_;      ///< terminal results by index
  std::vector<Slot*> waiting_;          ///< admission-accepted, not started
  std::vector<std::thread> lane_threads_;
  bool session_open_ = false;
  bool closing_ = false;
  bool wide_active_ = false;  ///< the gang token: one wide job at a time
  SchedulerStats stats_;
  /// Lock-free hints for the per-round fast path (LaneYield::check reads
  /// these without taking mutex_).
  std::atomic<std::size_t> waiting_count_{0};
  std::atomic<int> running_count_{0};
  std::atomic<bool> wide_active_hint_{false};
};

}  // namespace psdp::serve
