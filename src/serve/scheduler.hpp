// The batch solve service: many instances (or many configurations of one
// instance), scheduled concurrently over the existing par thread pool.
//
// The repo's entry points solve exactly one instance per call; a serving
// deployment answers streams of heterogeneous jobs. SolveBatch collects
// jobs (instance + OptimizeOptions + optional completion callback);
// BatchScheduler runs them with cooperative work-sharding over
// par::global_pool():
//
//   * SMALL solves pack together: jobs below SchedulerOptions::wide_work
//     are drained by `lanes` concurrent lanes (one pool batch whose tasks
//     pull jobs from a shared atomic queue). A job inside a lane runs its
//     nested parallel regions inline (the pool's nested-region rule), so a
//     lane occupies exactly one thread however many regions the solver
//     opens -- small solves stop wasting the pool on loops that are under
//     the parallel grain anyway, and the pool's width turns into job
//     throughput.
//   * LARGE solves keep wide parallelism: jobs at or above wide_work run
//     one at a time on the driving thread with the whole pool, exactly as
//     a solo call would.
//
// Determinism: a lane executes a job's parallel loops inline, but the
// loops' *partitioning* (and parallel_reduce's chunk-order combine) depends
// only on the global par::num_threads() -- not on which thread executes --
// so a job's results are bitwise identical to a solo run at the same pool
// width, whichever lane ran it (verified by bench_serve and
// tests/test_serve.cpp).
//
// Artifacts are shared through the ArtifactCache (artifact_cache.hpp): jobs
// with the same `instance` key resolve one prepared instance (transpose
// indexes, segment grids, KernelPlans, covering normalizations) and lease
// pooled SolverWorkspaces, so after the first job per key the batch
// performs zero index rebuilds and zero plan re-measurements.
//
// Failure isolation: a job that throws reports through JobResult::error;
// the batch always runs to completion (the robustness counterpart of the
// CLI's per-flag error naming).
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/optimize.hpp"
#include "core/poslp.hpp"
#include "serve/artifact_cache.hpp"

namespace psdp::serve {

struct JobResult;  // declared below JobSpec, which carries its callback

/// One solve request: which prepared instance (by cache key + builder),
/// which solver configuration, and how to report back.
struct JobSpec {
  /// ArtifactCache key -- jobs sharing it share every prepared artifact.
  std::string instance;
  /// Display label; defaults to "<instance>#<index>" when empty.
  std::string label;
  JobKind kind = JobKind::kPackingFactorized;
  /// Builds the instance when `instance` misses the cache. Required.
  ArtifactCache::Builder builder;
  /// Solver configuration (eps, probe_solver, decision knobs...). The
  /// factorized path's workspace pointer is overwritten with the job's
  /// pooled lease.
  core::OptimizeOptions options;
  /// Estimated per-iteration work; >= SchedulerOptions::wide_work runs the
  /// job at full pool width instead of inside a lane. 0 = narrow. The
  /// add_* helpers fill this from PreparedInstance::estimated_work().
  Index work = 0;
  /// Invoked right after the job finishes, on whichever thread ran it
  /// (lane workers included) -- keep it cheap and thread-safe. A
  /// throwing callback cannot fail the batch: its exception is swallowed
  /// (the job's result is already recorded by then).
  std::function<void(const JobResult&)> on_complete;
};

/// Everything one job produced. Exactly one of the payload fields matching
/// `kind` is meaningful when ok.
struct JobResult {
  std::size_t index = 0;  ///< position in the batch
  std::string instance;
  std::string label;
  JobKind kind = JobKind::kPackingFactorized;
  bool ok = false;
  std::string error;      ///< what() of the failure when !ok
  double seconds = 0;     ///< wall time of this job (artifact resolve + solve)
  bool cache_hit = false; ///< artifacts served without running the builder
  int lane = -1;          ///< lane that ran it; -1 = full-width (wide) job
  core::PackingOptimum packing;    ///< kPackingDense / kPackingFactorized
  core::CoveringOptimum covering;  ///< kCovering
  core::LpOptimum lp;              ///< kPackingLp
};

/// An ordered collection of jobs submitted as one unit.
class SolveBatch {
 public:
  /// Append a fully-specified job; returns its index (== result index).
  std::size_t add(JobSpec job);

  /// Convenience adders for preloaded shared instances: the builder wraps
  /// the pointer (so a cache miss costs nothing but bookkeeping), `work`
  /// is derived from the instance, and `kind` is set for you.
  std::size_t add_packing(std::string key,
                          std::shared_ptr<const core::PackingInstance> instance,
                          core::OptimizeOptions options = {},
                          std::string label = "");
  std::size_t add_factorized(
      std::string key,
      std::shared_ptr<const core::FactorizedPackingInstance> instance,
      core::OptimizeOptions options = {}, std::string label = "");
  std::size_t add_covering(std::string key,
                           std::shared_ptr<const core::CoveringProblem> problem,
                           core::OptimizeOptions options = {},
                           std::string label = "");
  std::size_t add_lp(std::string key,
                     std::shared_ptr<const core::PackingLp> lp,
                     core::OptimizeOptions options = {},
                     std::string label = "");

  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }
  const std::vector<JobSpec>& jobs() const { return jobs_; }
  std::vector<JobSpec>& jobs() { return jobs_; }

 private:
  std::vector<JobSpec> jobs_;
};

struct SchedulerOptions {
  /// Concurrent lanes draining the narrow-job queue. 0 = auto:
  /// min(#narrow jobs, par::num_threads()).
  int lanes = 0;
  /// JobSpec::work at or above this runs at full pool width, alone.
  Index wide_work = Index{1} << 26;
  /// Artifact-cache sizing and transpose-plan build options.
  ArtifactCache::Options cache;
};

/// The batch executor. One scheduler owns one ArtifactCache, so artifacts
/// persist across run() calls: a warm scheduler serves repeat batches with
/// zero instance preparation.
class BatchScheduler {
 public:
  explicit BatchScheduler(SchedulerOptions options = {});

  /// Run every job; returns results indexed like the batch. Blocks until
  /// the batch is drained. Call from a non-worker thread (the driving
  /// thread of the process, or the run_async driver). Job failures land in
  /// JobResult::error; infrastructure failures (a builder throwing) fail
  /// the affected jobs, never the batch.
  std::vector<JobResult> run(const SolveBatch& batch);

  /// run() on a detached driver thread; the future carries the results.
  /// The batch is moved into the driver. Per-job on_complete callbacks
  /// remain the streaming interface; the future is the terminal barrier.
  std::future<std::vector<JobResult>> run_async(SolveBatch batch);

  ArtifactCache& cache() { return cache_; }
  const SchedulerOptions& options() const { return options_; }

 private:
  void run_job(const JobSpec& spec, JobResult& result, int lane);

  SchedulerOptions options_;
  ArtifactCache cache_;
  std::mutex run_mutex_;  ///< one batch at a time over the shared pool
};

}  // namespace psdp::serve
