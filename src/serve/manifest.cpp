#include "serve/manifest.hpp"

#include <fstream>
#include <istream>
#include <sstream>

#include "io/chunked.hpp"
#include "io/instance_io.hpp"
#include "util/cli.hpp"
#include "util/tunables.hpp"

namespace psdp::serve {

namespace {

core::ProbeSolver probe_from_name(const std::string& name) {
  if (name == "decision") return core::ProbeSolver::kDecision;
  if (name == "phased") return core::ProbeSolver::kPhased;
  if (name == "bucketed") return core::ProbeSolver::kBucketed;
  PSDP_CHECK(false, str("unknown probe solver '", name,
                        "' (decision | phased | bucketed)"));
  return core::ProbeSolver::kDecision;  // unreachable
}

/// Builder loading `path` at resolve time, routed through the cache's plan
/// options so loaded factors tune into the owned plan memo. Factorized
/// paths are sniffed for the chunked container magic and dispatched to the
/// shard-at-a-time loader; `shards` > 0 requests that partition on the
/// loaded instance (text or chunked, overriding a chunked file's stored
/// cuts).
ArtifactCache::Builder path_builder(JobKind kind, const std::string& path,
                                    Index shards) {
  return [kind, path, shards](const sparse::TransposePlanOptions& plan_options) {
    switch (kind) {
      case JobKind::kPackingDense:
        return prepare_packing(io::load_packing(path));
      case JobKind::kPackingFactorized: {
        if (io::is_chunked_instance_file(path)) {
          io::ChunkedLoadOptions options;
          options.plan_options = plan_options;
          return prepare_factorized(
              io::load_factorized_chunked(path, options, shards));
        }
        return prepare_factorized(
            io::load_factorized(path, plan_options, shards));
      }
      case JobKind::kCovering:
        return prepare_covering(io::load_covering(path));
      case JobKind::kPackingLp:
        return prepare_lp(io::load_lp(path));
    }
    PSDP_CHECK(false, "serve: unreachable job kind");
    return PreparedInstance{};
  };
}

}  // namespace

ManifestLineKind parse_manifest_line(const std::string& raw,
                                     const std::string& source,
                                     Index line_number, JobSpec* job) {
  std::string line = raw;
  // Strip comments: '#' starts one only at line start or after
  // whitespace. A '#' embedded in a token (label=p99#high, an id with a
  // fragment) is data -- the old find-any-'#' rule silently truncated
  // such values and then quoted the truncated line in error messages.
  for (std::size_t at = 0; at < line.size(); ++at) {
    if (line[at] == '#' &&
        (at == 0 || line[at - 1] == ' ' || line[at - 1] == '\t')) {
      line.resize(at);
      break;
    }
  }
  std::istringstream fields(line);
  std::string kind_name;
  if (!(fields >> kind_name)) return ManifestLineKind::kBlank;

  const auto fail = [&](const std::string& what) {
    throw InvalidArgument(
        str(source, ":", line_number, ": ", what, " in '", line, "'"));
  };

  // `set key=value ...` lines apply tunable-registry overrides (see
  // util/tunables.hpp) to the process-wide registry as they are read, so
  // they land after env and CLI overrides and before any job on a later
  // line runs: "set lanes=2" at the top of a manifest tunes the whole
  // batch. Unknown names and out-of-range values get the registry's
  // named errors plus the manifest location.
  if (kind_name == "set") {
    std::string assignment;
    bool any = false;
    while (fields >> assignment) {
      const std::size_t eq = assignment.find('=');
      if (eq == std::string::npos) {
        fail(str("expected key=value, got '", assignment, "'"));
      }
      try {
        util::tunables().set_named(assignment.substr(0, eq),
                                   assignment.substr(eq + 1));
      } catch (const InvalidArgument& e) {
        fail(e.what());
      }
      any = true;
    }
    if (!any) fail("set line without assignments");
    return ManifestLineKind::kSet;
  }

  PSDP_CHECK(job != nullptr, "serve: parse_manifest_line needs a job slot");
  *job = JobSpec{};
  try {
    job->kind = job_kind_from_name(kind_name);
  } catch (const InvalidArgument& e) {
    fail(e.what());
  }
  std::string path;
  if (!(fields >> path)) fail("missing instance path");
  job->instance = str(kind_name, ":", path);
  job->label = str(path, ":", line_number);
  Index shards = 0;       // 0 = the loader's default partition
  bool explicit_id = false;

  std::string option;
  while (fields >> option) {
    const std::size_t eq = option.find('=');
    if (eq == std::string::npos) {
      fail(str("expected key=value, got '", option, "'"));
    }
    const std::string key = option.substr(0, eq);
    const std::string value = option.substr(eq + 1);
    try {
      // util::detail::parse_value supplies the typed InvalidArgument
      // errors ("cannot parse real 'bogus'"); fail() adds the location.
      if (key == "eps") {
        job->options.eps = util::detail::parse_value<Real>(value);
      } else if (key == "decision-eps") {
        job->options.decision_eps = util::detail::parse_value<Real>(value);
      } else if (key == "probe") {
        job->options.probe_solver = probe_from_name(value);
      } else if (key == "sketch-rows") {
        const Index rows = util::detail::parse_value<Index>(value);
        PSDP_CHECK(rows >= 0, str("sketch-rows must be >= 0, got ", value));
        job->options.decision.dot_options.sketch_rows_override = rows;
      } else if (key == "label") {
        job->label = value;
      } else if (key == "id") {
        PSDP_CHECK(!value.empty(), "id must be non-empty");
        job->instance = value;
        explicit_id = true;
      } else if (key == "shards") {
        PSDP_CHECK(job->kind == JobKind::kPackingFactorized,
                   str("shards applies to packing-factorized jobs, not ",
                       kind_name));
        shards = util::detail::parse_value<Index>(value);
        PSDP_CHECK(shards >= 0, str("shards must be >= 0, got ", value));
      } else if (key == "wide") {
        job->work = util::detail::parse_value<bool>(value)
                        ? std::numeric_limits<Index>::max() / 2
                        : 0;
      } else if (key == "priority") {
        job->priority = util::detail::parse_value<int>(value);
      } else if (key == "deadline-ms") {
        // 0 is a real (immediately-due) deadline, not "none": the spec
        // field is an optional, and any parsed value engages it.
        const double deadline = util::detail::parse_value<double>(value);
        PSDP_CHECK(deadline >= 0,
                   str("deadline-ms must be >= 0, got ", value));
        job->deadline_ms = deadline;
      } else {
        PSDP_CHECK(false, str("unknown manifest key '", key, "'"));
      }
    } catch (const InvalidArgument& e) {
      fail(e.what());
    }
  }
  job->builder = path_builder(job->kind, path, shards);
  // Different partitions of one file are different prepared artifacts:
  // the default cache key carries the shards request so a shards=4 job
  // never resolves to a cached shards=1 instance. An explicit id= takes
  // the caller's word that sharing is intended.
  if (shards > 0 && !explicit_id) {
    job->instance = str(job->instance, ":shards=", shards);
  }
  return ManifestLineKind::kJob;
}

SolveBatch read_manifest(std::istream& in, const std::string& source) {
  SolveBatch batch;
  std::string line;
  Index line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    JobSpec job;
    if (parse_manifest_line(line, source, line_number, &job) ==
        ManifestLineKind::kJob) {
      batch.add(std::move(job));
    }
  }
  PSDP_CHECK(!batch.empty(),
             str(source, ": no jobs (every line blank or a comment)"));
  return batch;
}

SolveBatch load_manifest(const std::string& path) {
  std::ifstream in(path);
  PSDP_CHECK(in.is_open(), str("serve: cannot open manifest '", path, "'"));
  return read_manifest(in, path);
}

}  // namespace psdp::serve
