#include "serve/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace psdp::serve {

namespace {

constexpr char kMagic0 = 'P';
constexpr char kMagic1 = 's';

bool known_frame_type(char c) {
  switch (static_cast<FrameType>(c)) {
    case FrameType::kSubmit:
    case FrameType::kGoodbye:
    case FrameType::kResult:
    case FrameType::kBackpressure:
    case FrameType::kError:
    case FrameType::kDone:
      return true;
  }
  return false;
}

/// Read exactly `size` bytes. Returns the byte count actually read (< size
/// only at end of stream).
std::size_t read_exact(Connection& connection, char* out, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const std::size_t n = connection.read_some(out + got, size - got);
    if (n == 0) break;
    got += n;
  }
  return got;
}

}  // namespace

std::optional<Frame> read_frame(Connection& connection,
                                const FrameLimits& limits) {
  char header[kFrameHeaderBytes];
  const std::size_t got = read_exact(connection, header, sizeof(header));
  if (got == 0) return std::nullopt;  // clean EOF at a frame boundary
  if (got < sizeof(header)) {
    throw ProtocolError(str("torn frame: end of stream after ", got,
                            " of ", sizeof(header), " header bytes"));
  }
  if (header[0] != kMagic0 || header[1] != kMagic1) {
    throw ProtocolError("bad frame magic (expected \"Ps\")");
  }
  if (!known_frame_type(header[2])) {
    throw ProtocolError(str("unknown frame type '", header[2], "'"));
  }
  std::uint32_t length = 0;
  for (int i = 3; i >= 0; --i) {
    length = (length << 8) |
             static_cast<std::uint32_t>(static_cast<unsigned char>(
                 header[4 + i]));
  }
  if (length > limits.max_payload) {
    throw ProtocolError(str("frame payload of ", length,
                            " bytes exceeds the ", limits.max_payload,
                            "-byte limit"));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(header[2]);
  frame.payload.resize(length);
  if (length > 0) {
    const std::size_t body = read_exact(connection, frame.payload.data(),
                                        length);
    if (body < length) {
      throw ProtocolError(str("torn frame: end of stream after ", body,
                              " of ", length, " payload bytes"));
    }
  }
  return frame;
}

bool write_frame(Connection& connection, FrameType type,
                 std::string_view payload) {
  PSDP_CHECK(payload.size() <= 0xffffffffu,
             str("frame payload of ", payload.size(),
                 " bytes exceeds the u32 length field"));
  std::string buffer;
  buffer.reserve(kFrameHeaderBytes + payload.size());
  buffer.push_back(kMagic0);
  buffer.push_back(kMagic1);
  buffer.push_back(static_cast<char>(type));
  buffer.push_back('\0');
  std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    buffer.push_back(static_cast<char>(length & 0xff));
    length >>= 8;
  }
  buffer.append(payload);
  // One write for header + payload: a frame is never torn by the sender.
  return connection.write_all(buffer.data(), buffer.size());
}

// --------------------------------------------------------------- loopback --

namespace {

/// One direction of a loopback connection: an unbounded byte queue.
/// write() never blocks (so a stalled reader cannot wedge a scheduler
/// lane); read_some() blocks until bytes arrive or the stream ends.
class LoopbackPipe {
 public:
  bool write(const char* data, std::size_t size) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (read_closed_ || write_closed_) return false;
    buffer_.append(data, size);
    cv_.notify_all();
    return true;
  }

  std::size_t read_some(char* out, std::size_t max) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] {
      return head_ < buffer_.size() || write_closed_ || read_closed_;
    });
    if (read_closed_ || head_ >= buffer_.size()) return 0;
    const std::size_t n = std::min(max, buffer_.size() - head_);
    std::memcpy(out, buffer_.data() + head_, n);
    head_ += n;
    if (head_ == buffer_.size()) {
      buffer_.clear();
      head_ = 0;
    }
    return n;
  }

  void close_write() {
    std::lock_guard<std::mutex> lock(mutex_);
    write_closed_ = true;
    cv_.notify_all();
  }

  void close_read() {
    std::lock_guard<std::mutex> lock(mutex_);
    read_closed_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::string buffer_;
  std::size_t head_ = 0;
  bool write_closed_ = false;  ///< writer gone: drained reads return EOF
  bool read_closed_ = false;   ///< reader gone: writes fail, reads EOF now
};

class LoopbackConnection final : public Connection {
 public:
  LoopbackConnection(std::shared_ptr<LoopbackPipe> in,
                     std::shared_ptr<LoopbackPipe> out)
      : in_(std::move(in)), out_(std::move(out)) {}

  ~LoopbackConnection() override { close(); }

  std::size_t read_some(char* out, std::size_t max) override {
    return in_->read_some(out, max);
  }

  bool write_all(const char* data, std::size_t size) override {
    return out_->write(data, size);
  }

  void shutdown_read() override { in_->close_read(); }

  void close() override {
    in_->close_read();
    out_->close_write();
  }

 private:
  std::shared_ptr<LoopbackPipe> in_;
  std::shared_ptr<LoopbackPipe> out_;
};

std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
make_loopback_pair() {
  auto a_to_b = std::make_shared<LoopbackPipe>();
  auto b_to_a = std::make_shared<LoopbackPipe>();
  return {std::make_unique<LoopbackConnection>(b_to_a, a_to_b),
          std::make_unique<LoopbackConnection>(a_to_b, b_to_a)};
}

}  // namespace

std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
loopback_pair() {
  return make_loopback_pair();
}

struct LoopbackListener::State {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::unique_ptr<Connection>> pending;
  bool shutdown = false;
};

LoopbackListener::LoopbackListener() : state_(std::make_shared<State>()) {}

LoopbackListener::~LoopbackListener() { shutdown(); }

std::unique_ptr<Connection> LoopbackListener::connect() {
  auto [client, server] = make_loopback_pair();
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    PSDP_CHECK(!state_->shutdown, "loopback listener is shut down");
    state_->pending.push_back(std::move(server));
    state_->cv.notify_all();
  }
  return std::move(client);
}

std::unique_ptr<Connection> LoopbackListener::accept() {
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] {
    return !state_->pending.empty() || state_->shutdown;
  });
  if (state_->pending.empty()) return nullptr;  // shut down
  std::unique_ptr<Connection> connection = std::move(state_->pending.front());
  state_->pending.pop_front();
  return connection;
}

void LoopbackListener::shutdown() {
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->shutdown = true;
  // Connections queued but never accepted see a closed peer.
  for (auto& pending : state_->pending) pending->close();
  state_->pending.clear();
  state_->cv.notify_all();
}

// ---------------------------------------------------------------- sockets --

namespace {

struct ParsedEndpoint {
  bool tcp = false;
  std::string path;  ///< unix-socket path
  std::string host;  ///< tcp host ("" = any/loopback)
  std::uint16_t port = 0;
};

ParsedEndpoint parse_endpoint(const std::string& endpoint) {
  ParsedEndpoint parsed;
  if (endpoint.rfind("tcp:", 0) == 0) {
    parsed.tcp = true;
    const std::string rest = endpoint.substr(4);
    const std::size_t colon = rest.rfind(':');
    PSDP_CHECK(colon != std::string::npos,
               str("tcp endpoint '", endpoint, "' needs host:port"));
    parsed.host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    PSDP_CHECK(!port_text.empty() &&
                   port_text.find_first_not_of("0123456789") ==
                       std::string::npos,
               str("bad tcp port '", port_text, "' in '", endpoint, "'"));
    const unsigned long port = std::stoul(port_text);
    PSDP_CHECK(port <= 65535, str("tcp port ", port, " out of range"));
    parsed.port = static_cast<std::uint16_t>(port);
    return parsed;
  }
  parsed.path =
      endpoint.rfind("unix:", 0) == 0 ? endpoint.substr(5) : endpoint;
  PSDP_CHECK(!parsed.path.empty(), "empty unix-socket path");
  PSDP_CHECK(parsed.path.size() < sizeof(sockaddr_un{}.sun_path),
             str("unix-socket path '", parsed.path, "' is too long"));
  return parsed;
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  std::strncpy(address.sun_path, path.c_str(),
               sizeof(address.sun_path) - 1);
  return address;
}

sockaddr_in tcp_address(const std::string& host, std::uint16_t port,
                        bool for_bind) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (host.empty() || host == "*") {
    address.sin_addr.s_addr =
        for_bind ? htonl(INADDR_ANY) : htonl(INADDR_LOOPBACK);
  } else {
    PSDP_CHECK(::inet_pton(AF_INET, host.c_str(), &address.sin_addr) == 1,
               str("cannot parse IPv4 address '", host, "'"));
  }
  return address;
}

/// A connected socket. close() half-closes via ::shutdown so a concurrent
/// reader unblocks; the fd itself is released only in the destructor (no
/// fd-reuse races between a closing thread and a blocked reader).
class SocketConnection final : public Connection {
 public:
  explicit SocketConnection(int fd) : fd_(fd) {}

  ~SocketConnection() override {
    close();
    ::close(fd_);
  }

  std::size_t read_some(char* out, std::size_t max) override {
    while (true) {
      const ssize_t n = ::recv(fd_, out, max, 0);
      if (n >= 0) return static_cast<std::size_t>(n);
      if (errno == EINTR) continue;
      return 0;  // connection reset etc.: end of stream for the caller
    }
  }

  bool write_all(const char* data, std::size_t size) override {
    std::size_t sent = 0;
    while (sent < size) {
      // MSG_NOSIGNAL: a dead peer yields EPIPE, never SIGPIPE -- a client
      // that disconnected mid-stream must not kill the daemon.
      const ssize_t n =
          ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  void shutdown_read() override { ::shutdown(fd_, SHUT_RD); }

  void close() override { ::shutdown(fd_, SHUT_RDWR); }

 private:
  int fd_;
};

}  // namespace

SocketListener::SocketListener(const std::string& endpoint)
    : endpoint_(endpoint) {
  const ParsedEndpoint parsed = parse_endpoint(endpoint);
  fd_ = ::socket(parsed.tcp ? AF_INET : AF_UNIX, SOCK_STREAM, 0);
  PSDP_CHECK(fd_ >= 0, str("cannot create socket for '", endpoint, "': ",
                           std::strerror(errno)));
  int bound = -1;
  if (parsed.tcp) {
    const int reuse = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
    const sockaddr_in address = tcp_address(parsed.host, parsed.port, true);
    bound = ::bind(fd_, reinterpret_cast<const sockaddr*>(&address),
                   sizeof(address));
  } else {
    ::unlink(parsed.path.c_str());  // a stale socket file blocks bind
    const sockaddr_un address = unix_address(parsed.path);
    bound = ::bind(fd_, reinterpret_cast<const sockaddr*>(&address),
                   sizeof(address));
    if (bound == 0) unlink_path_ = parsed.path;
  }
  if (bound != 0 || ::listen(fd_, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw InvalidArgument(str("cannot listen on '", endpoint, "': ", why));
  }
  int pipe_fds[2];
  PSDP_CHECK(::pipe(pipe_fds) == 0,
             str("cannot create wake pipe: ", std::strerror(errno)));
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
}

SocketListener::~SocketListener() {
  shutdown();
  if (fd_ >= 0) ::close(fd_);
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
  if (!unlink_path_.empty()) ::unlink(unlink_path_.c_str());
}

std::unique_ptr<Connection> SocketListener::accept() {
  while (true) {
    pollfd fds[2] = {{fd_, POLLIN, 0}, {wake_read_, POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return nullptr;
    }
    if (fds[1].revents != 0) return nullptr;  // shutdown() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return nullptr;
    }
    return std::make_unique<SocketConnection>(client);
  }
}

void SocketListener::shutdown() {
  if (wake_write_ >= 0) {
    const char byte = 'x';
    // A full pipe is fine: one pending byte already wakes the poll.
    [[maybe_unused]] const ssize_t n = ::write(wake_write_, &byte, 1);
  }
}

std::unique_ptr<Connection> socket_connect(const std::string& endpoint) {
  const ParsedEndpoint parsed = parse_endpoint(endpoint);
  const int fd = ::socket(parsed.tcp ? AF_INET : AF_UNIX, SOCK_STREAM, 0);
  PSDP_CHECK(fd >= 0, str("cannot create socket for '", endpoint, "': ",
                          std::strerror(errno)));
  int connected = -1;
  if (parsed.tcp) {
    const sockaddr_in address = tcp_address(parsed.host, parsed.port, false);
    connected = ::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                          sizeof(address));
  } else {
    const sockaddr_un address = unix_address(parsed.path);
    connected = ::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                          sizeof(address));
  }
  if (connected != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw InvalidArgument(str("cannot connect to '", endpoint, "': ", why));
  }
  return std::make_unique<SocketConnection>(fd);
}

}  // namespace psdp::serve
