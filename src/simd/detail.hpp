// Backend-shared scalar helpers. These are deliberately ISA-free: every
// backend points its table at the same code here, so the results agree
// bitwise across ISAs (which the mixed-precision certificate accounting
// relies on for the compensated float reductions).
#pragma once

#include <cmath>

#include "util/common.hpp"

namespace psdp::simd::detail {

/// Compensated (Neumaier) double-precision sum of squares of a float
/// panel. Each product double(x[i])^2 is exact -- a float has 24
/// significand bits, its square fits double's 53 -- so the only rounding
/// is in the compensated running sum.
inline double compensated_sum_sq_f(const float* x, Index n) {
  double sum = 0;
  double comp = 0;
  for (Index i = 0; i < n; ++i) {
    const double v = static_cast<double>(x[i]) * static_cast<double>(x[i]);
    const double next = sum + v;
    if (std::abs(sum) >= std::abs(v)) {
      comp += (sum - next) + v;
    } else {
      comp += (v - next) + sum;
    }
    sum = next;
  }
  return sum + comp;
}

/// dst[i] = float(src[i]) (round-to-nearest down-conversion).
inline void convert_panel_d2f(const double* src, float* dst, Index n) {
  for (Index i = 0; i < n; ++i) dst[i] = static_cast<float>(src[i]);
}

}  // namespace psdp::simd::detail
