// NEON backend: 128-bit lanes (2 doubles / 4 floats). Built only on
// aarch64 targets (see CMakeLists.txt), where NEON is architecturally
// guaranteed -- no runtime feature probe needed beyond the platform check.

#if !defined(__aarch64__) && !defined(__ARM_NEON)
#error "backend_neon.cpp must be compiled for an aarch64/NEON target"
#endif

#define PSDP_SIMD_NS neon
#include "simd/vec.hpp"
#include "simd/kernels_impl.hpp"

namespace psdp::simd {

const KernelTable* neon_kernel_table() {
  static const KernelTable table = neon::make_kernel_table();
  return &table;
}

}  // namespace psdp::simd
