// The scalar reference backend: the pre-SIMD kernel loops, verbatim.
//
// This translation unit is compiled with the project's default flags (no
// -m arch options), exactly like sparse/csr.cpp was before the simd layer
// existed -- baseline x86-64 / aarch64 codegen has no scalar FMA to
// contract into, so every per-element update is the separate multiply+add
// the pre-SIMD kernels performed, in the same order. Forcing
// Isa::kScalar therefore reproduces the pre-PR solver trajectories
// bit-for-bit (tests/test_simd.cpp pins this against inlined copies of
// the original loops).
//
// The float kernels are new with the mixed-precision mode (no pre-PR
// anchor); they mirror the double loops with plain float multiply+add so
// the backend stays internally consistent.

#include <algorithm>
#include <cmath>

#include "simd/detail.hpp"
#include "simd/kernel_table.hpp"

namespace psdp::simd {
namespace scalar {
namespace {

template <typename T, int B>
void gather_columns(const Index* offsets, const Index* rows, const T* values,
                    Index jb, Index je, const T* x, T* y) {
  for (Index j = jb; j < je; ++j) {
    T acc[B] = {};
    const Index b0 = offsets[j];
    const Index e0 = offsets[j + 1];
    for (Index e = b0; e < e0; ++e) {
      const T v = values[e];
      const T* in = x + rows[e] * B;
      for (int t = 0; t < B; ++t) acc[t] += v * in[t];
    }
    T* out = y + j * B;
    for (int t = 0; t < B; ++t) out[t] = acc[t];
  }
}

template <typename T>
void gather_columns_any(const Index* offsets, const Index* rows,
                        const T* values, Index jb, Index je, Index b,
                        const T* x, T* y) {
  for (Index j = jb; j < je; ++j) {
    T* out = y + j * b;
    std::fill(out, out + b, T{0});
    const Index b0 = offsets[j];
    const Index e0 = offsets[j + 1];
    for (Index e = b0; e < e0; ++e) {
      const T v = values[e];
      const T* in = x + rows[e] * b;
      for (Index t = 0; t < b; ++t) out[t] += v * in[t];
    }
  }
}

template <typename T>
void gather_dispatch(const Index* offsets, const Index* rows, const T* values,
                     Index jb, Index je, Index b, const T* x, T* y) {
  switch (b) {
    case 1: gather_columns<T, 1>(offsets, rows, values, jb, je, x, y); break;
    case 2: gather_columns<T, 2>(offsets, rows, values, jb, je, x, y); break;
    case 4: gather_columns<T, 4>(offsets, rows, values, jb, je, x, y); break;
    case 8: gather_columns<T, 8>(offsets, rows, values, jb, je, x, y); break;
    case 16: gather_columns<T, 16>(offsets, rows, values, jb, je, x, y); break;
    case 32: gather_columns<T, 32>(offsets, rows, values, jb, je, x, y); break;
    default: gather_columns_any(offsets, rows, values, jb, je, b, x, y); break;
  }
}

constexpr Index kGatherPrefetch = 12;

template <int B>
inline void prefetch_panel_row(const double* in) {
#if defined(__GNUC__) || defined(__clang__)
  for (int t = 0; t < B; t += 8) __builtin_prefetch(in + t, 0, 1);
#else
  (void)in;
#endif
}

template <int B>
void gather_columns_window(const Index* seg_starts, Index s0, Index s1,
                           Index cols, const Index* rows,
                           const double* values, Index jb, Index je,
                           const double* x, double* y) {
  for (Index j = jb; j < je; ++j) {
    const Index b0 = seg_starts[s0 * cols + j];
    const Index e0 = seg_starts[s1 * cols + j];
    if (b0 == e0) continue;
    double acc[B];
    double* out = y + j * B;
    for (int t = 0; t < B; ++t) acc[t] = out[t];
    for (Index e = b0; e < e0; ++e) {
      if constexpr (B >= 4) {
        if (e + kGatherPrefetch < e0) {
          prefetch_panel_row<B>(x + rows[e + kGatherPrefetch] * B);
        }
      }
      const double v = values[e];
      const double* in = x + rows[e] * B;
      for (int t = 0; t < B; ++t) acc[t] += v * in[t];
    }
    for (int t = 0; t < B; ++t) out[t] = acc[t];
  }
}

void gather_columns_window_any(const Index* seg_starts, Index s0, Index s1,
                               Index cols, const Index* rows,
                               const double* values, Index jb, Index je,
                               Index b, const double* x, double* y) {
  for (Index j = jb; j < je; ++j) {
    const Index b0 = seg_starts[s0 * cols + j];
    const Index e0 = seg_starts[s1 * cols + j];
    double* out = y + j * b;
    for (Index e = b0; e < e0; ++e) {
      const double v = values[e];
      const double* in = x + rows[e] * b;
      for (Index t = 0; t < b; ++t) out[t] += v * in[t];
    }
  }
}

template <typename T>
void spmm_rows_impl(const Index* offsets, const Index* cols, const T* values,
                    Index ib, Index ie, Index b, const T* x, T* y) {
  for (Index i = ib; i < ie; ++i) {
    T* out = y + i * b;
    std::fill(out, out + b, T{0});
    const Index e0 = offsets[i];
    const Index e1 = offsets[i + 1];
    for (Index e = e0; e < e1; ++e) {
      const T v = values[e];
      const T* in = x + cols[e] * b;
      for (Index t = 0; t < b; ++t) out[t] += v * in[t];
    }
  }
}

template <typename T>
void scatter_rows_impl(const Index* offsets, const Index* cols,
                       const T* values, Index ib, Index ie, Index b,
                       const T* x, T* y) {
  for (Index i = ib; i < ie; ++i) {
    const T* in = x + i * b;
    const Index e0 = offsets[i];
    const Index e1 = offsets[i + 1];
    for (Index e = e0; e < e1; ++e) {
      T* row = y + cols[e] * b;
      const T v = values[e];
      for (Index t = 0; t < b; ++t) row[t] += v * in[t];
    }
  }
}

template <typename T>
void taylor_step_impl(T* next, T* y, T scale, Index lo, Index hi) {
  for (Index i = lo; i < hi; ++i) {
    const T v = next[i] * scale;
    next[i] = v;
    y[i] += v;
  }
}

void s_spmm_rows(const Index* offsets, const Index* cols, const double* values,
                 Index ib, Index ie, Index b, const double* x, double* y) {
  spmm_rows_impl(offsets, cols, values, ib, ie, b, x, y);
}

void s_gather_panel(const Index* offsets, const Index* rows,
                    const double* values, Index jb, Index je, Index b,
                    const double* x, double* y) {
  gather_dispatch(offsets, rows, values, jb, je, b, x, y);
}

void s_gather_window(const Index* seg_starts, Index s0, Index s1, Index cols,
                     const Index* rows, const double* values, Index jb,
                     Index je, Index b, const double* x, double* y) {
  switch (b) {
    case 1:
      gather_columns_window<1>(seg_starts, s0, s1, cols, rows, values, jb, je,
                               x, y);
      break;
    case 2:
      gather_columns_window<2>(seg_starts, s0, s1, cols, rows, values, jb, je,
                               x, y);
      break;
    case 4:
      gather_columns_window<4>(seg_starts, s0, s1, cols, rows, values, jb, je,
                               x, y);
      break;
    case 8:
      gather_columns_window<8>(seg_starts, s0, s1, cols, rows, values, jb, je,
                               x, y);
      break;
    case 16:
      gather_columns_window<16>(seg_starts, s0, s1, cols, rows, values, jb,
                                je, x, y);
      break;
    case 32:
      gather_columns_window<32>(seg_starts, s0, s1, cols, rows, values, jb,
                                je, x, y);
      break;
    default:
      gather_columns_window_any(seg_starts, s0, s1, cols, rows, values, jb,
                                je, b, x, y);
      break;
  }
}

void s_scatter_rows(const Index* offsets, const Index* cols,
                    const double* values, Index ib, Index ie, Index b,
                    const double* x, double* y) {
  scatter_rows_impl(offsets, cols, values, ib, ie, b, x, y);
}

void s_taylor_step(double* next, double* y, double scale, Index lo,
                   Index hi) {
  taylor_step_impl(next, y, scale, lo, hi);
}

double s_sum_sq(const double* x, Index n) {
  double acc = 0;
  for (Index i = 0; i < n; ++i) acc += x[i] * x[i];
  return acc;
}

void s_spmm_rows_f(const Index* offsets, const Index* cols,
                   const float* values, Index ib, Index ie, Index b,
                   const float* x, float* y) {
  spmm_rows_impl(offsets, cols, values, ib, ie, b, x, y);
}

void s_gather_panel_f(const Index* offsets, const Index* rows,
                      const float* values, Index jb, Index je, Index b,
                      const float* x, float* y) {
  gather_dispatch(offsets, rows, values, jb, je, b, x, y);
}

void s_scatter_rows_f(const Index* offsets, const Index* cols,
                      const float* values, Index ib, Index ie, Index b,
                      const float* x, float* y) {
  scatter_rows_impl(offsets, cols, values, ib, ie, b, x, y);
}

void s_taylor_step_f(float* next, float* y, float scale, Index lo, Index hi) {
  taylor_step_impl(next, y, scale, lo, hi);
}

}  // namespace
}  // namespace scalar

const KernelTable* scalar_kernel_table() {
  static const KernelTable table = [] {
    KernelTable t;
    t.spmm_rows = &scalar::s_spmm_rows;
    t.gather_panel = &scalar::s_gather_panel;
    t.gather_window = &scalar::s_gather_window;
    t.scatter_rows = &scalar::s_scatter_rows;
    t.taylor_step = &scalar::s_taylor_step;
    t.sum_sq = &scalar::s_sum_sq;
    t.spmm_rows_f = &scalar::s_spmm_rows_f;
    t.gather_panel_f = &scalar::s_gather_panel_f;
    t.scatter_rows_f = &scalar::s_scatter_rows_f;
    t.taylor_step_f = &scalar::s_taylor_step_f;
    t.sum_sq_f = &detail::compensated_sum_sq_f;
    t.convert_d2f = &detail::convert_panel_d2f;
    return t;
  }();
  return &table;
}

}  // namespace psdp::simd
