// AVX-512F backend: 512-bit lanes (8 doubles / 16 floats). Compiled with
// -mavx512f -mavx512dq -mavx512vl -mfma via per-file flags in
// CMakeLists.txt; dispatched only after __builtin_cpu_supports("avx512f").

#if !defined(__AVX512F__)
#error "backend_avx512.cpp must be compiled with -mavx512f"
#endif

#define PSDP_SIMD_NS avx512
#include "simd/vec.hpp"
#include "simd/kernels_impl.hpp"

namespace psdp::simd {

const KernelTable* avx512_kernel_table() {
  static const KernelTable table = avx512::make_kernel_table();
  return &table;
}

}  // namespace psdp::simd
