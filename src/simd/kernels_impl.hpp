// Generic vectorized kernel bodies, instantiated once per SIMD backend.
//
// Included by each vector backend TU after simd/vec.hpp (and thus after
// PSDP_SIMD_NS is defined); the kernels compile against that backend's
// VecD/VecF and land in the same per-backend namespace. make_kernel_table()
// at the bottom assembles the KernelTable a backend exports.
//
// Determinism (the contract of simd/simd.hpp): every per-element update in
// every kernel here is a fused multiply-add -- Vec*::fma on whole lanes,
// fma_s/fma_sf on remainders -- so within one backend all kernels reduce a
// given output element through the same operation chain, preserving the
// sparse layer's cross-kernel bitwise guarantees. taylor_step is the one
// deliberate exception: it stores the rounded product before adding (it
// must match the scalar backend bit-for-bit, see kernel_table.hpp).
#pragma once

#ifndef PSDP_SIMD_NS
#error "define PSDP_SIMD_NS and include simd/vec.hpp before kernels_impl.hpp"
#endif

#include <algorithm>
#include <type_traits>

#include "simd/detail.hpp"
#include "simd/kernel_table.hpp"

namespace psdp::simd::PSDP_SIMD_NS {

namespace impl {

/// acc[0..b) += v * in[0..b): whole lanes fused, remainder scalar-fused.
/// The shared per-element primitive of the runtime-width kernels.
template <typename V, typename T>
inline void axpy_panel(T* acc, T v, const T* in, Index b) {
  constexpr Index kL = V::kLanes;
  const V vv = V::broadcast(v);
  Index t = 0;
  for (; t + kL <= b; t += kL) {
    V::fma(vv, V::load(in + t), V::load(acc + t)).store(acc + t);
  }
  if constexpr (std::is_same_v<T, double>) {
    for (; t < b; ++t) acc[t] = fma_s(v, in[t], acc[t]);
  } else {
    for (; t < b; ++t) acc[t] = fma_sf(v, in[t], acc[t]);
  }
}

/// Software-prefetch one b-wide panel row (one fetch per 64-byte line).
template <typename T, int B>
inline void prefetch_row(const T* in) {
#if defined(__GNUC__) || defined(__clang__)
  constexpr int kStride = static_cast<int>(64 / sizeof(T));
  for (int t = 0; t < B; t += kStride) __builtin_prefetch(in + t, 0, 1);
#else
  (void)in;
#endif
}

/// Entries of prefetch lead inside the windowed gather (matches the scalar
/// backend's constant; purely a latency knob, invisible to results).
constexpr Index kGatherPrefetch = 12;

// --- CSC gather --------------------------------------------------------

template <typename V, typename T, int B>
void gather_w(const Index* offsets, const Index* rows, const T* values,
              Index jb, Index je, const T* x, T* y) {
  constexpr Index kL = V::kLanes;
  if constexpr (B >= kL) {
    constexpr int kNV = B / kL;  // widths and lane counts are powers of two
    for (Index j = jb; j < je; ++j) {
      V acc[kNV];
      for (int q = 0; q < kNV; ++q) acc[q] = V::zero();
      const Index e0 = offsets[j];
      const Index e1 = offsets[j + 1];
      for (Index e = e0; e < e1; ++e) {
        const V vv = V::broadcast(values[e]);
        const T* in = x + rows[e] * B;
        for (int q = 0; q < kNV; ++q) {
          acc[q] = V::fma(vv, V::load(in + q * kL), acc[q]);
        }
      }
      T* out = y + j * B;
      for (int q = 0; q < kNV; ++q) acc[q].store(out + q * kL);
    }
  } else {
    for (Index j = jb; j < je; ++j) {
      T acc[B] = {};
      const Index e0 = offsets[j];
      const Index e1 = offsets[j + 1];
      for (Index e = e0; e < e1; ++e) {
        const T v = values[e];
        const T* in = x + rows[e] * B;
        if constexpr (std::is_same_v<T, double>) {
          for (int t = 0; t < B; ++t) acc[t] = fma_s(v, in[t], acc[t]);
        } else {
          for (int t = 0; t < B; ++t) acc[t] = fma_sf(v, in[t], acc[t]);
        }
      }
      T* out = y + j * B;
      for (int t = 0; t < B; ++t) out[t] = acc[t];
    }
  }
}

template <typename V, typename T>
void gather_any(const Index* offsets, const Index* rows, const T* values,
                Index jb, Index je, Index b, const T* x, T* y) {
  for (Index j = jb; j < je; ++j) {
    T* out = y + j * b;
    std::fill(out, out + b, T{0});
    const Index e0 = offsets[j];
    const Index e1 = offsets[j + 1];
    for (Index e = e0; e < e1; ++e) {
      axpy_panel<V>(out, values[e], x + rows[e] * b, b);
    }
  }
}

template <typename V, typename T>
void gather_dispatch(const Index* offsets, const Index* rows, const T* values,
                     Index jb, Index je, Index b, const T* x, T* y) {
  switch (b) {
    case 1: gather_w<V, T, 1>(offsets, rows, values, jb, je, x, y); break;
    case 2: gather_w<V, T, 2>(offsets, rows, values, jb, je, x, y); break;
    case 4: gather_w<V, T, 4>(offsets, rows, values, jb, je, x, y); break;
    case 8: gather_w<V, T, 8>(offsets, rows, values, jb, je, x, y); break;
    case 16: gather_w<V, T, 16>(offsets, rows, values, jb, je, x, y); break;
    case 32: gather_w<V, T, 32>(offsets, rows, values, jb, je, x, y); break;
    default: gather_any<V>(offsets, rows, values, jb, je, b, x, y); break;
  }
}

// --- segmented-column gather (one window) ------------------------------

template <typename V, int B>
void gather_window_w(const Index* seg_starts, Index s0, Index s1, Index cols,
                     const Index* rows, const double* values, Index jb,
                     Index je, const double* x, double* y) {
  constexpr Index kL = V::kLanes;
  for (Index j = jb; j < je; ++j) {
    const Index e0 = seg_starts[s0 * cols + j];
    const Index e1 = seg_starts[s1 * cols + j];
    if (e0 == e1) continue;
    double* out = y + j * B;
    if constexpr (B >= kL) {
      constexpr int kNV = B / kL;
      V acc[kNV];
      for (int q = 0; q < kNV; ++q) acc[q] = V::load(out + q * kL);
      for (Index e = e0; e < e1; ++e) {
        if constexpr (B >= 4) {
          if (e + kGatherPrefetch < e1) {
            prefetch_row<double, B>(x + rows[e + kGatherPrefetch] * B);
          }
        }
        const V vv = V::broadcast(values[e]);
        const double* in = x + rows[e] * B;
        for (int q = 0; q < kNV; ++q) {
          acc[q] = V::fma(vv, V::load(in + q * kL), acc[q]);
        }
      }
      for (int q = 0; q < kNV; ++q) acc[q].store(out + q * kL);
    } else {
      double acc[B];
      for (int t = 0; t < B; ++t) acc[t] = out[t];
      for (Index e = e0; e < e1; ++e) {
        const double v = values[e];
        const double* in = x + rows[e] * B;
        for (int t = 0; t < B; ++t) acc[t] = fma_s(v, in[t], acc[t]);
      }
      for (int t = 0; t < B; ++t) out[t] = acc[t];
    }
  }
}

template <typename V>
void gather_window_any(const Index* seg_starts, Index s0, Index s1,
                       Index cols, const Index* rows, const double* values,
                       Index jb, Index je, Index b, const double* x,
                       double* y) {
  for (Index j = jb; j < je; ++j) {
    const Index e0 = seg_starts[s0 * cols + j];
    const Index e1 = seg_starts[s1 * cols + j];
    double* out = y + j * b;
    for (Index e = e0; e < e1; ++e) {
      axpy_panel<V>(out, values[e], x + rows[e] * b, b);
    }
  }
}

// --- row-range SpMM ----------------------------------------------------

template <typename V, typename T, int B>
void spmm_w(const Index* offsets, const Index* cols, const T* values,
            Index ib, Index ie, const T* x, T* y) {
  constexpr Index kL = V::kLanes;
  for (Index i = ib; i < ie; ++i) {
    const Index e0 = offsets[i];
    const Index e1 = offsets[i + 1];
    T* out = y + i * B;
    if constexpr (B >= kL) {
      constexpr int kNV = B / kL;
      V acc[kNV];
      for (int q = 0; q < kNV; ++q) acc[q] = V::zero();
      for (Index e = e0; e < e1; ++e) {
        const V vv = V::broadcast(values[e]);
        const T* in = x + cols[e] * B;
        for (int q = 0; q < kNV; ++q) {
          acc[q] = V::fma(vv, V::load(in + q * kL), acc[q]);
        }
      }
      for (int q = 0; q < kNV; ++q) acc[q].store(out + q * kL);
    } else {
      T acc[B] = {};
      for (Index e = e0; e < e1; ++e) {
        const T v = values[e];
        const T* in = x + cols[e] * B;
        if constexpr (std::is_same_v<T, double>) {
          for (int t = 0; t < B; ++t) acc[t] = fma_s(v, in[t], acc[t]);
        } else {
          for (int t = 0; t < B; ++t) acc[t] = fma_sf(v, in[t], acc[t]);
        }
      }
      for (int t = 0; t < B; ++t) out[t] = acc[t];
    }
  }
}

template <typename V, typename T>
void spmm_any(const Index* offsets, const Index* cols, const T* values,
              Index ib, Index ie, Index b, const T* x, T* y) {
  for (Index i = ib; i < ie; ++i) {
    T* out = y + i * b;
    std::fill(out, out + b, T{0});
    const Index e0 = offsets[i];
    const Index e1 = offsets[i + 1];
    for (Index e = e0; e < e1; ++e) {
      axpy_panel<V>(out, values[e], x + cols[e] * b, b);
    }
  }
}

template <typename V, typename T>
void spmm_dispatch(const Index* offsets, const Index* cols, const T* values,
                   Index ib, Index ie, Index b, const T* x, T* y) {
  switch (b) {
    case 1: spmm_w<V, T, 1>(offsets, cols, values, ib, ie, x, y); break;
    case 2: spmm_w<V, T, 2>(offsets, cols, values, ib, ie, x, y); break;
    case 4: spmm_w<V, T, 4>(offsets, cols, values, ib, ie, x, y); break;
    case 8: spmm_w<V, T, 8>(offsets, cols, values, ib, ie, x, y); break;
    case 16: spmm_w<V, T, 16>(offsets, cols, values, ib, ie, x, y); break;
    case 32: spmm_w<V, T, 32>(offsets, cols, values, ib, ie, x, y); break;
    default: spmm_any<V>(offsets, cols, values, ib, ie, b, x, y); break;
  }
}

// --- row-range transpose scatter ---------------------------------------

template <typename V, typename T>
void scatter_impl(const Index* offsets, const Index* cols, const T* values,
                  Index ib, Index ie, Index b, const T* x, T* y) {
  for (Index i = ib; i < ie; ++i) {
    const T* in = x + i * b;
    const Index e0 = offsets[i];
    const Index e1 = offsets[i + 1];
    for (Index e = e0; e < e1; ++e) {
      axpy_panel<V>(y + cols[e] * b, values[e], in, b);
    }
  }
}

// --- fused Taylor step (no contraction: matches the scalar chain) ------

template <typename V, typename T>
void taylor_step_impl(T* next, T* y, T scale, Index lo, Index hi) {
  constexpr Index kL = V::kLanes;
  const V vs = V::broadcast(scale);
  Index i = lo;
  for (; i + kL <= hi; i += kL) {
    const V v = V::mul(V::load(next + i), vs);
    v.store(next + i);
    V::add(V::load(y + i), v).store(y + i);
  }
  for (; i < hi; ++i) {
    const T v = next[i] * scale;
    next[i] = v;
    y[i] += v;
  }
}

// --- sum of squares ----------------------------------------------------

template <typename V>
double sum_sq_impl(const double* x, Index n) {
  constexpr Index kL = V::kLanes;
  V acc0 = V::zero();
  V acc1 = V::zero();
  Index i = 0;
  for (; i + 2 * kL <= n; i += 2 * kL) {
    const V a = V::load(x + i);
    const V b = V::load(x + i + kL);
    acc0 = V::fma(a, a, acc0);
    acc1 = V::fma(b, b, acc1);
  }
  double total = V::add(acc0, acc1).hsum();
  for (; i < n; ++i) total = fma_s(x[i], x[i], total);
  return total;
}

}  // namespace impl

// --- the exported table ------------------------------------------------

inline void k_spmm_rows(const Index* offsets, const Index* cols,
                        const double* values, Index ib, Index ie, Index b,
                        const double* x, double* y) {
  impl::spmm_dispatch<VecD>(offsets, cols, values, ib, ie, b, x, y);
}

inline void k_gather_panel(const Index* offsets, const Index* rows,
                           const double* values, Index jb, Index je, Index b,
                           const double* x, double* y) {
  impl::gather_dispatch<VecD>(offsets, rows, values, jb, je, b, x, y);
}

inline void k_gather_window(const Index* seg_starts, Index s0, Index s1,
                            Index cols, const Index* rows,
                            const double* values, Index jb, Index je, Index b,
                            const double* x, double* y) {
  switch (b) {
    case 1:
      impl::gather_window_w<VecD, 1>(seg_starts, s0, s1, cols, rows, values,
                                     jb, je, x, y);
      break;
    case 2:
      impl::gather_window_w<VecD, 2>(seg_starts, s0, s1, cols, rows, values,
                                     jb, je, x, y);
      break;
    case 4:
      impl::gather_window_w<VecD, 4>(seg_starts, s0, s1, cols, rows, values,
                                     jb, je, x, y);
      break;
    case 8:
      impl::gather_window_w<VecD, 8>(seg_starts, s0, s1, cols, rows, values,
                                     jb, je, x, y);
      break;
    case 16:
      impl::gather_window_w<VecD, 16>(seg_starts, s0, s1, cols, rows, values,
                                      jb, je, x, y);
      break;
    case 32:
      impl::gather_window_w<VecD, 32>(seg_starts, s0, s1, cols, rows, values,
                                      jb, je, x, y);
      break;
    default:
      impl::gather_window_any<VecD>(seg_starts, s0, s1, cols, rows, values,
                                    jb, je, b, x, y);
      break;
  }
}

inline void k_scatter_rows(const Index* offsets, const Index* cols,
                           const double* values, Index ib, Index ie, Index b,
                           const double* x, double* y) {
  impl::scatter_impl<VecD>(offsets, cols, values, ib, ie, b, x, y);
}

inline void k_taylor_step(double* next, double* y, double scale, Index lo,
                          Index hi) {
  impl::taylor_step_impl<VecD>(next, y, scale, lo, hi);
}

inline double k_sum_sq(const double* x, Index n) {
  return impl::sum_sq_impl<VecD>(x, n);
}

inline void k_spmm_rows_f(const Index* offsets, const Index* cols,
                          const float* values, Index ib, Index ie, Index b,
                          const float* x, float* y) {
  impl::spmm_dispatch<VecF>(offsets, cols, values, ib, ie, b, x, y);
}

inline void k_gather_panel_f(const Index* offsets, const Index* rows,
                             const float* values, Index jb, Index je, Index b,
                             const float* x, float* y) {
  impl::gather_dispatch<VecF>(offsets, rows, values, jb, je, b, x, y);
}

inline void k_scatter_rows_f(const Index* offsets, const Index* cols,
                             const float* values, Index ib, Index ie, Index b,
                             const float* x, float* y) {
  impl::scatter_impl<VecF>(offsets, cols, values, ib, ie, b, x, y);
}

inline void k_taylor_step_f(float* next, float* y, float scale, Index lo,
                            Index hi) {
  impl::taylor_step_impl<VecF>(next, y, scale, lo, hi);
}

inline KernelTable make_kernel_table() {
  KernelTable table;
  table.spmm_rows = &k_spmm_rows;
  table.gather_panel = &k_gather_panel;
  table.gather_window = &k_gather_window;
  table.scatter_rows = &k_scatter_rows;
  table.taylor_step = &k_taylor_step;
  table.sum_sq = &k_sum_sq;
  table.spmm_rows_f = &k_spmm_rows_f;
  table.gather_panel_f = &k_gather_panel_f;
  table.scatter_rows_f = &k_scatter_rows_f;
  table.taylor_step_f = &k_taylor_step_f;
  table.sum_sq_f = &detail::compensated_sum_sq_f;
  table.convert_d2f = &detail::convert_panel_d2f;
  return table;
}

}  // namespace psdp::simd::PSDP_SIMD_NS
