// The function-pointer table each SIMD backend exports.
//
// One table instance per compiled backend (scalar / AVX2 / AVX-512 / NEON),
// selected at runtime by simd/dispatch.cpp (see simd/simd.hpp for the seam
// and its determinism contract). The signatures are raw pointers + index
// ranges rather than Matrix/Csr references so the backends stay independent
// of the container layers and a single table serves csr.cpp, taylor.cpp and
// bigdotexp.cpp alike.
//
// Layout conventions shared by every kernel:
//  * Panels are row-major with `b` contiguous columns per row: element
//    (i, t) lives at p[i * b + t].
//  * CSR triples (offsets, cols, values) and CSC triples (offsets, rows,
//    values) follow the Csr class layout; CSC rows are ascending within
//    each column, which is what pins the gather-family accumulation order.
//  * Range arguments are half-open [lo, hi) so callers can parallelize by
//    chunking; every kernel is pure over its range (no hidden state).
#pragma once

#include "util/common.hpp"

namespace psdp::simd {

/// The kernels one backend provides. All pointers are always non-null.
struct KernelTable {
  // --- double-precision kernels -----------------------------------------

  /// Row-range SpMM: for each row i in [ib, ie), y[i*b .. i*b+b) =
  /// sum over the row's entries of values[k] * x[cols[k]*b ..). Overwrites
  /// the output rows. b = 1 is the SpMV inner body.
  void (*spmm_rows)(const Index* offsets, const Index* cols,
                    const double* values, Index ib, Index ie, Index b,
                    const double* x, double* y);

  /// Column-range CSC gather: for each output column j in [jb, je),
  /// y[j*b ..) = the serial ascending-row reduction of column j's entries
  /// over the rows() x b input panel x. Overwrites the output rows.
  void (*gather_panel)(const Index* offsets, const Index* rows,
                       const double* values, Index jb, Index je, Index b,
                       const double* x, double* y);

  /// One window of the segmented-column gather: folds each owned column's
  /// window-local entry span (seg_starts rows s0..s1, grid row-major with
  /// `cols` columns) onto y[j*b ..) with a load-modify-store. Callers sweep
  /// windows sequentially so each output still reduces in ascending row
  /// order -- bitwise identical to gather_panel under every window size.
  void (*gather_window)(const Index* seg_starts, Index s0, Index s1,
                        Index cols, const Index* rows, const double* values,
                        Index jb, Index je, Index b, const double* x,
                        double* y);

  /// Row-range CSR transpose scatter: for each row i in [ib, ie) and each
  /// entry (i, cols[k], v), y[cols[k]*b ..) += v * x[i*b ..). Accumulates
  /// into y (callers zero or chunk-combine). Also the fused per-constraint
  /// dot accumulation of bigdotexp (scatter of Q over the exp panel).
  void (*scatter_rows)(const Index* offsets, const Index* cols,
                       const double* values, Index ib, Index ie, Index b,
                       const double* x, double* y);

  /// Fused Taylor recurrence step over [lo, hi): v = next[i] * scale;
  /// next[i] = v; y[i] += v. The store of v rounds the product before the
  /// add in every backend (never contracted), so all ISAs agree bitwise --
  /// and match the pre-SIMD scale(); add_scaled() pair exactly.
  void (*taylor_step)(double* next, double* y, double scale, Index lo,
                      Index hi);

  /// Sum of squares of x[0..n). Lane-parallel reduction on the vector
  /// backends (fixed combine order, deterministic per ISA; differs from
  /// the scalar chain by reassociation only).
  double (*sum_sq)(const double* x, Index n);

  // --- float32 panel kernels (mixed-precision sketch mode) --------------

  /// spmm_rows over float values and panels.
  void (*spmm_rows_f)(const Index* offsets, const Index* cols,
                      const float* values, Index ib, Index ie, Index b,
                      const float* x, float* y);

  /// gather_panel over float values and panels.
  void (*gather_panel_f)(const Index* offsets, const Index* rows,
                         const float* values, Index jb, Index je, Index b,
                         const float* x, float* y);

  /// scatter_rows over float values and panels.
  void (*scatter_rows_f)(const Index* offsets, const Index* cols,
                         const float* values, Index ib, Index ie, Index b,
                         const float* x, float* y);

  /// taylor_step over float panels.
  void (*taylor_step_f)(float* next, float* y, float scale, Index lo,
                        Index hi);

  /// Compensated (Neumaier) double-precision sum of squares of a float
  /// panel: each product double(x[i]) * double(x[i]) is exact, the running
  /// sum carries a compensation term. Identical code in every backend, so
  /// the float dot reductions agree bitwise across ISAs.
  double (*sum_sq_f)(const float* x, Index n);

  /// dst[i] = float(src[i]) for i in [0, n) (panel down-conversion).
  void (*convert_d2f)(const double* src, float* dst, Index n);
};

}  // namespace psdp::simd
