// The SIMD dispatch seam: one runtime-selected kernel table behind which
// every hot inner loop of the sparse/linalg/core layers runs.
//
// Backends are separate translation units compiled with per-file arch flags
// (see CMakeLists.txt, PSDP_SIMD): a scalar reference backend that keeps the
// pre-SIMD loops verbatim -- the bit-identity anchor every equivalence test
// compares against -- plus AVX2, AVX-512 and NEON backends built on the
// fixed-width vector wrappers of simd/vec.hpp. At startup the best backend
// that is both compiled in and supported by the running CPU becomes active;
// the PSDP_SIMD environment variable ("scalar", "avx2", "avx512", "neon",
// "auto") overrides the pick, and set_active_isa() switches it
// programmatically (tests, the autotuner's forced-scalar measurements).
//
// Determinism contract (see docs/ARCHITECTURE.md, "The simd layer"):
//  * Within one ISA, every kernel reduces each output element through the
//    same per-element operation chain (fused multiply-add on the vector
//    backends, separate multiply+add on the scalar one), so the cross-kernel
//    bitwise guarantees of the sparse layer -- gather == segmented gather ==
//    single-chunk scatter, SpMM column == SpMV -- hold under every backend.
//  * The scalar backend is bit-identical to the pre-SIMD implementation.
//  * Across ISAs results differ only by FMA-contraction-level rounding
//    (one rounding per multiply-add step); tests bound it in ulps.
#pragma once

#include <vector>

#include "simd/kernel_table.hpp"
#include "util/common.hpp"

namespace psdp::simd {

/// Instruction sets a kernel backend can target, in preference order.
enum class Isa {
  kScalar = 0,  ///< reference loops, bit-identical to the pre-SIMD kernels
  kNeon = 1,    ///< 128-bit NEON (aarch64)
  kAvx2 = 2,    ///< 256-bit AVX2 + FMA
  kAvx512 = 3,  ///< 512-bit AVX-512F
};

/// Stable lower-case name ("scalar", "neon", "avx2", "avx512") used by the
/// JSON serializations, the bench banners, and the PSDP_SIMD env override.
const char* isa_name(Isa isa);

/// Parse an isa_name() string; returns false on unknown names.
bool isa_from_name(const std::string& name, Isa& out);

/// ISAs whose backends were compiled into this binary (always includes
/// kScalar; the others depend on the PSDP_SIMD build knob and target arch).
std::vector<Isa> compiled_isas();

/// True when `isa` is compiled in AND supported by the running CPU.
bool isa_available(Isa isa);

/// The best available ISA (highest preference among isa_available()).
Isa best_supported_isa();

/// The ISA the process currently dispatches to. Initialized on first use to
/// best_supported_isa(), or to the PSDP_SIMD environment override when set
/// (unavailable override values fall back to the best supported ISA).
Isa active_isa();

/// Switch the active ISA; throws InvalidArgument when `isa` is not
/// available. Takes effect for every subsequent active_kernels() call --
/// callers flip it only at known-quiescent points (tests, autotuner).
void set_active_isa(Isa isa);

/// The kernel table of the active ISA. One atomic pointer load; safe to
/// call from any thread.
const KernelTable& active_kernels();

/// RAII ISA override for tests and the autotuner's scalar-vs-SIMD
/// measurements: restores the previous active ISA on scope exit.
class ScopedIsa {
 public:
  explicit ScopedIsa(Isa isa) : saved_(active_isa()) { set_active_isa(isa); }
  ~ScopedIsa() { set_active_isa(saved_); }
  ScopedIsa(const ScopedIsa&) = delete;
  ScopedIsa& operator=(const ScopedIsa&) = delete;

 private:
  Isa saved_;
};

}  // namespace psdp::simd
