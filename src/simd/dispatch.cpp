// Runtime ISA selection behind simd::active_kernels().
//
// Which backends exist in the binary is decided at build time (CMake sets
// PSDP_HAVE_AVX2 / PSDP_HAVE_AVX512 / PSDP_HAVE_NEON on this file only);
// which one runs is decided here at first use: the best compiled-in ISA the
// CPU supports, overridable by the PSDP_SIMD environment variable and by
// set_active_isa(). The active table is one atomic pointer, so the hot
// paths pay a single relaxed load per kernel batch.

#include "simd/simd.hpp"

#include <atomic>
#include <cstdlib>

namespace psdp::simd {

const KernelTable* scalar_kernel_table();
#if defined(PSDP_HAVE_AVX2)
const KernelTable* avx2_kernel_table();
#endif
#if defined(PSDP_HAVE_AVX512)
const KernelTable* avx512_kernel_table();
#endif
#if defined(PSDP_HAVE_NEON)
const KernelTable* neon_kernel_table();
#endif

namespace {

bool isa_compiled(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kNeon:
#if defined(PSDP_HAVE_NEON)
      return true;
#else
      return false;
#endif
    case Isa::kAvx2:
#if defined(PSDP_HAVE_AVX2)
      return true;
#else
      return false;
#endif
    case Isa::kAvx512:
#if defined(PSDP_HAVE_AVX512)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool cpu_supports(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kNeon:
#if defined(__aarch64__)
      return true;  // NEON is architecturally mandatory on aarch64
#else
      return false;
#endif
    case Isa::kAvx2:
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Isa::kAvx512:
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx512f");
#else
      return false;
#endif
  }
  return false;
}

const KernelTable* table_for(Isa isa) {
  switch (isa) {
#if defined(PSDP_HAVE_NEON)
    case Isa::kNeon:
      return neon_kernel_table();
#endif
#if defined(PSDP_HAVE_AVX2)
    case Isa::kAvx2:
      return avx2_kernel_table();
#endif
#if defined(PSDP_HAVE_AVX512)
    case Isa::kAvx512:
      return avx512_kernel_table();
#endif
    default:
      return scalar_kernel_table();
  }
}

/// Preference order, best first.
constexpr Isa kPreference[] = {Isa::kAvx512, Isa::kAvx2, Isa::kNeon,
                               Isa::kScalar};

Isa initial_isa() {
  // The environment override is read once, at first dispatch: an
  // unavailable or unrecognized request falls back to the best supported
  // ISA rather than failing (headless perf runs set PSDP_SIMD=scalar on
  // machines they cannot predict).
  if (const char* env = std::getenv("PSDP_SIMD")) {
    Isa requested;
    const std::string value(env);
    if (!value.empty() && value != "auto" && isa_from_name(value, requested) &&
        isa_available(requested)) {
      return requested;
    }
  }
  return best_supported_isa();
}

struct ActiveState {
  std::atomic<const KernelTable*> table{nullptr};
  std::atomic<int> isa{0};
};

ActiveState& active_state() {
  static ActiveState state;
  static const bool initialized = [] {
    const Isa isa = initial_isa();
    state.table.store(table_for(isa), std::memory_order_relaxed);
    state.isa.store(static_cast<int>(isa), std::memory_order_relaxed);
    return true;
  }();
  (void)initialized;
  return state;
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kNeon:
      return "neon";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "scalar";
}

bool isa_from_name(const std::string& name, Isa& out) {
  for (const Isa isa : kPreference) {
    if (name == isa_name(isa)) {
      out = isa;
      return true;
    }
  }
  return false;
}

std::vector<Isa> compiled_isas() {
  std::vector<Isa> isas;
  for (const Isa isa : kPreference) {
    if (isa_compiled(isa)) isas.push_back(isa);
  }
  return isas;
}

bool isa_available(Isa isa) { return isa_compiled(isa) && cpu_supports(isa); }

Isa best_supported_isa() {
  for (const Isa isa : kPreference) {
    if (isa_available(isa)) return isa;
  }
  return Isa::kScalar;
}

Isa active_isa() {
  return static_cast<Isa>(active_state().isa.load(std::memory_order_relaxed));
}

void set_active_isa(Isa isa) {
  PSDP_CHECK(isa_available(isa),
             str("simd: ISA '", isa_name(isa),
                 "' is not available (not compiled in or not supported by "
                 "this CPU)"));
  ActiveState& state = active_state();
  state.table.store(table_for(isa), std::memory_order_relaxed);
  state.isa.store(static_cast<int>(isa), std::memory_order_relaxed);
}

const KernelTable& active_kernels() {
  return *active_state().table.load(std::memory_order_relaxed);
}

}  // namespace psdp::simd
