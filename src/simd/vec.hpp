// Fixed-width vector wrappers simd::VecD / simd::VecF.
//
// Included by each backend translation unit AFTER defining PSDP_SIMD_NS to
// the backend's namespace (avx2, avx512, neon, fallback); the wrapper types
// land in psdp::simd::<ns> so every backend can be linked into one binary
// without ODR collisions. The implementation is chosen from the
// architecture macros the backend's per-file compile flags set (-mavx2,
// -mavx512f, aarch64 NEON), so the same header serves all of them.
//
// Each wrapper exposes the same tiny surface: kLanes, load/store
// (unaligned), broadcast, zero, add, mul, and fma (fused: one rounding).
// The scalar helpers fma_s / fma_sf are the single-element twin of
// Vec*::fma -- remainder loops use them so a backend applies exactly one
// per-element operation chain everywhere (the determinism contract of
// simd/simd.hpp).
#pragma once

#ifndef PSDP_SIMD_NS
#error "define PSDP_SIMD_NS before including simd/vec.hpp"
#endif

#include <cmath>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif
#if defined(__ARM_NEON) || defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace psdp::simd::PSDP_SIMD_NS {

#if defined(__AVX512F__)

struct VecD {
  static constexpr int kLanes = 8;
  __m512d v;
  static VecD load(const double* p) { return {_mm512_loadu_pd(p)}; }
  void store(double* p) const { _mm512_storeu_pd(p, v); }
  static VecD broadcast(double x) { return {_mm512_set1_pd(x)}; }
  static VecD zero() { return {_mm512_setzero_pd()}; }
  static VecD add(VecD a, VecD b) { return {_mm512_add_pd(a.v, b.v)}; }
  static VecD mul(VecD a, VecD b) { return {_mm512_mul_pd(a.v, b.v)}; }
  static VecD fma(VecD a, VecD b, VecD c) {
    return {_mm512_fmadd_pd(a.v, b.v, c.v)};
  }
  /// Horizontal sum with a fixed halving order (deterministic per ISA;
  /// spelled out because GCC 12's _mm512_reduce_add_pd trips a spurious
  /// -Wuninitialized in its own header).
  double hsum() const {
    alignas(64) double lane[kLanes];
    _mm512_store_pd(lane, v);
    return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
           ((lane[4] + lane[5]) + (lane[6] + lane[7]));
  }
};

struct VecF {
  static constexpr int kLanes = 16;
  __m512 v;
  static VecF load(const float* p) { return {_mm512_loadu_ps(p)}; }
  void store(float* p) const { _mm512_storeu_ps(p, v); }
  static VecF broadcast(float x) { return {_mm512_set1_ps(x)}; }
  static VecF zero() { return {_mm512_setzero_ps()}; }
  static VecF add(VecF a, VecF b) { return {_mm512_add_ps(a.v, b.v)}; }
  static VecF mul(VecF a, VecF b) { return {_mm512_mul_ps(a.v, b.v)}; }
  static VecF fma(VecF a, VecF b, VecF c) {
    return {_mm512_fmadd_ps(a.v, b.v, c.v)};
  }
};

inline double fma_s(double a, double b, double c) { return std::fma(a, b, c); }
inline float fma_sf(float a, float b, float c) { return std::fmaf(a, b, c); }

#elif defined(__AVX2__)

struct VecD {
  static constexpr int kLanes = 4;
  __m256d v;
  static VecD load(const double* p) { return {_mm256_loadu_pd(p)}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }
  static VecD broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static VecD zero() { return {_mm256_setzero_pd()}; }
  static VecD add(VecD a, VecD b) { return {_mm256_add_pd(a.v, b.v)}; }
  static VecD mul(VecD a, VecD b) { return {_mm256_mul_pd(a.v, b.v)}; }
  static VecD fma(VecD a, VecD b, VecD c) {
    return {_mm256_fmadd_pd(a.v, b.v, c.v)};
  }
  double hsum() const {
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d pair = _mm_add_pd(lo, hi);
    return _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
  }
};

struct VecF {
  static constexpr int kLanes = 8;
  __m256 v;
  static VecF load(const float* p) { return {_mm256_loadu_ps(p)}; }
  void store(float* p) const { _mm256_storeu_ps(p, v); }
  static VecF broadcast(float x) { return {_mm256_set1_ps(x)}; }
  static VecF zero() { return {_mm256_setzero_ps()}; }
  static VecF add(VecF a, VecF b) { return {_mm256_add_ps(a.v, b.v)}; }
  static VecF mul(VecF a, VecF b) { return {_mm256_mul_ps(a.v, b.v)}; }
  static VecF fma(VecF a, VecF b, VecF c) {
    return {_mm256_fmadd_ps(a.v, b.v, c.v)};
  }
};

inline double fma_s(double a, double b, double c) { return std::fma(a, b, c); }
inline float fma_sf(float a, float b, float c) { return std::fmaf(a, b, c); }

#elif defined(__ARM_NEON) || defined(__aarch64__)

struct VecD {
  static constexpr int kLanes = 2;
  float64x2_t v;
  static VecD load(const double* p) { return {vld1q_f64(p)}; }
  void store(double* p) const { vst1q_f64(p, v); }
  static VecD broadcast(double x) { return {vdupq_n_f64(x)}; }
  static VecD zero() { return {vdupq_n_f64(0.0)}; }
  static VecD add(VecD a, VecD b) { return {vaddq_f64(a.v, b.v)}; }
  static VecD mul(VecD a, VecD b) { return {vmulq_f64(a.v, b.v)}; }
  static VecD fma(VecD a, VecD b, VecD c) {
    return {vfmaq_f64(c.v, a.v, b.v)};
  }
  double hsum() const { return vgetq_lane_f64(v, 0) + vgetq_lane_f64(v, 1); }
};

struct VecF {
  static constexpr int kLanes = 4;
  float32x4_t v;
  static VecF load(const float* p) { return {vld1q_f32(p)}; }
  void store(float* p) const { vst1q_f32(p, v); }
  static VecF broadcast(float x) { return {vdupq_n_f32(x)}; }
  static VecF zero() { return {vdupq_n_f32(0.0f)}; }
  static VecF add(VecF a, VecF b) { return {vaddq_f32(a.v, b.v)}; }
  static VecF mul(VecF a, VecF b) { return {vmulq_f32(a.v, b.v)}; }
  static VecF fma(VecF a, VecF b, VecF c) {
    return {vfmaq_f32(c.v, a.v, b.v)};
  }
};

inline double fma_s(double a, double b, double c) { return std::fma(a, b, c); }
inline float fma_sf(float a, float b, float c) { return std::fmaf(a, b, c); }

#else

/// One-lane stand-in so kernels_impl.hpp compiles on targets with no
/// vector unit; the scalar backend does not use it (it keeps the pre-SIMD
/// loops verbatim), but the generic kernels remain instantiable anywhere.
struct VecD {
  static constexpr int kLanes = 1;
  double v;
  static VecD load(const double* p) { return {*p}; }
  void store(double* p) const { *p = v; }
  static VecD broadcast(double x) { return {x}; }
  static VecD zero() { return {0.0}; }
  static VecD add(VecD a, VecD b) { return {a.v + b.v}; }
  static VecD mul(VecD a, VecD b) { return {a.v * b.v}; }
  static VecD fma(VecD a, VecD b, VecD c) {
    return {std::fma(a.v, b.v, c.v)};
  }
  double hsum() const { return v; }
};

struct VecF {
  static constexpr int kLanes = 1;
  float v;
  static VecF load(const float* p) { return {*p}; }
  void store(float* p) const { *p = v; }
  static VecF broadcast(float x) { return {x}; }
  static VecF zero() { return {0.0f}; }
  static VecF add(VecF a, VecF b) { return {a.v + b.v}; }
  static VecF mul(VecF a, VecF b) { return {a.v * b.v}; }
  static VecF fma(VecF a, VecF b, VecF c) {
    return {std::fmaf(a.v, b.v, c.v)};
  }
};

inline double fma_s(double a, double b, double c) { return std::fma(a, b, c); }
inline float fma_sf(float a, float b, float c) { return std::fmaf(a, b, c); }

#endif

}  // namespace psdp::simd::PSDP_SIMD_NS
