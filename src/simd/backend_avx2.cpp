// AVX2 + FMA backend: 256-bit lanes (4 doubles / 8 floats). Compiled with
// -mavx2 -mfma via per-file flags in CMakeLists.txt; only dispatch.cpp
// calls into it, and only after __builtin_cpu_supports confirms the CPU.

#if !defined(__AVX2__) || !defined(__FMA__)
#error "backend_avx2.cpp must be compiled with -mavx2 -mfma"
#endif

#define PSDP_SIMD_NS avx2
#include "simd/vec.hpp"
#include "simd/kernels_impl.hpp"

namespace psdp::simd {

const KernelTable* avx2_kernel_table() {
  static const KernelTable table = avx2::make_kernel_table();
  return &table;
}

}  // namespace psdp::simd
