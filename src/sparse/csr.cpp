#include "sparse/csr.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>

#include "par/cost_meter.hpp"
#include "par/parallel.hpp"
#include "simd/simd.hpp"

namespace psdp::sparse {

Csr Csr::from_triplets(Index rows, Index cols, std::vector<Triplet> triplets) {
  PSDP_CHECK(rows >= 0 && cols >= 0, "csr: dimensions must be non-negative");
  for (const Triplet& t : triplets) {
    PSDP_CHECK(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols,
               str("csr: triplet (", t.row, ",", t.col, ") out of range"));
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  Csr m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.offsets_.assign(static_cast<std::size_t>(rows) + 1, 0);
  m.columns_.reserve(triplets.size());
  m.values_.reserve(triplets.size());

  std::size_t i = 0;
  for (Index r = 0; r < rows; ++r) {
    m.offsets_[static_cast<std::size_t>(r)] = static_cast<Index>(m.values_.size());
    while (i < triplets.size() && triplets[i].row == r) {
      const Index c = triplets[i].col;
      Real v = 0;
      while (i < triplets.size() && triplets[i].row == r && triplets[i].col == c) {
        v += triplets[i].value;
        ++i;
      }
      if (v != 0) {
        m.columns_.push_back(c);
        m.values_.push_back(v);
      }
    }
  }
  m.offsets_[static_cast<std::size_t>(rows)] = static_cast<Index>(m.values_.size());
  return m;
}

Csr Csr::from_parts(Index rows, Index cols, std::vector<Index> offsets,
                    std::vector<Index> columns, std::vector<Real> values) {
  PSDP_CHECK(rows >= 0 && cols >= 0, "csr: dimensions must be non-negative");
  PSDP_CHECK(static_cast<Index>(offsets.size()) == rows + 1,
             str("csr: offsets must have rows+1 entries, got ", offsets.size(),
                 " for ", rows, " rows"));
  PSDP_CHECK(columns.size() == values.size(),
             "csr: column/value arrays must be parallel");
  PSDP_CHECK(offsets[0] == 0, "csr: offsets must start at 0");
  PSDP_CHECK(offsets[static_cast<std::size_t>(rows)] ==
                 static_cast<Index>(columns.size()),
             str("csr: offsets end at ", offsets[static_cast<std::size_t>(rows)],
                 ", expected nnz ", columns.size()));
  for (Index r = 0; r < rows; ++r) {
    const Index b = offsets[static_cast<std::size_t>(r)];
    const Index e = offsets[static_cast<std::size_t>(r) + 1];
    PSDP_CHECK(b <= e, str("csr: offsets decrease at row ", r));
    for (Index k = b; k < e; ++k) {
      const Index c = columns[static_cast<std::size_t>(k)];
      PSDP_CHECK(c >= 0 && c < cols,
                 str("csr: column ", c, " out of range in row ", r));
      PSDP_CHECK(k == b || columns[static_cast<std::size_t>(k) - 1] < c,
                 str("csr: columns not strictly ascending in row ", r));
      PSDP_CHECK(std::isfinite(values[static_cast<std::size_t>(k)]),
                 str("csr: non-finite value in row ", r));
    }
  }
  Csr m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.offsets_ = std::move(offsets);
  m.columns_ = std::move(columns);
  m.values_ = std::move(values);
  return m;
}

Csr Csr::from_dense(const Matrix& dense, Real drop_tol) {
  std::vector<Triplet> triplets;
  for (Index i = 0; i < dense.rows(); ++i) {
    for (Index j = 0; j < dense.cols(); ++j) {
      if (std::abs(dense(i, j)) > drop_tol) {
        triplets.push_back({i, j, dense(i, j)});
      }
    }
  }
  return from_triplets(dense.rows(), dense.cols(), std::move(triplets));
}

Csr Csr::identity(Index n) {
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) triplets.push_back({i, i, 1});
  return from_triplets(n, n, std::move(triplets));
}

std::span<const Index> Csr::row_cols(Index i) const {
  PSDP_ASSERT(i >= 0 && i < rows_);
  const auto b = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(i)]);
  const auto e = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(i) + 1]);
  return {columns_.data() + b, e - b};
}

std::span<const Real> Csr::row_vals(Index i) const {
  PSDP_ASSERT(i >= 0 && i < rows_);
  const auto b = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(i)]);
  const auto e = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(i) + 1]);
  return {values_.data() + b, e - b};
}

void Csr::apply(const Vector& x, Vector& y) const {
  PSDP_CHECK(x.size() == cols_, "csr apply: dimension mismatch");
  if (y.size() != rows_) y = Vector(rows_);
  // The width-1 SpMM through the dispatch seam: one row-range kernel serves
  // apply() and apply_block() alike, so the "SpMM column t == matvec"
  // bitwise guarantee holds under every backend by construction.
  const simd::KernelTable& kt = simd::active_kernels();
  par::parallel_for_chunked(0, rows_, [&](Index ib, Index ie) {
    kt.spmm_rows(offsets_.data(), columns_.data(), values_.data(), ib, ie, 1,
                 x.data(), y.data());
  }, /*grain=*/64);
  par::CostMeter::add_work(static_cast<std::uint64_t>(2 * nnz()));
  par::CostMeter::add_depth(par::reduction_depth(cols_));
}

Vector Csr::apply(const Vector& x) const {
  Vector y(rows_);
  apply(x, y);
  return y;
}

namespace {
/// Process-wide count of actual (non-idempotent) transpose-index builds;
/// the serve layer's cache-reuse assertions read it (see csr.hpp).
std::atomic<std::uint64_t> g_transpose_index_builds{0};
}  // namespace

std::uint64_t transpose_index_build_count() {
  return g_transpose_index_builds.load(std::memory_order_relaxed);
}

void Csr::build_transpose_index() { build_transpose_index({}); }

void Csr::build_transpose_index(const TransposePlanOptions& options) {
  if (t_built_) return;
  g_transpose_index_builds.fetch_add(1, std::memory_order_relaxed);
  t_offsets_.assign(static_cast<std::size_t>(cols_) + 1, 0);
  t_rows_.resize(values_.size());
  t_values_.resize(values_.size());
  // Counting sort by column; scanning rows in order makes the rows within
  // each column ascending, which is what pins the gather's accumulation
  // order to the owned-column sweep's (bitwise agreement).
  for (const Index c : columns_) ++t_offsets_[static_cast<std::size_t>(c) + 1];
  for (Index j = 0; j < cols_; ++j) {
    t_offsets_[static_cast<std::size_t>(j) + 1] +=
        t_offsets_[static_cast<std::size_t>(j)];
  }
  std::vector<Index> cursor(t_offsets_.begin(), t_offsets_.end() - 1);
  for (Index i = 0; i < rows_; ++i) {
    const auto cols = row_cols(i);
    const auto vals = row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const auto slot =
          static_cast<std::size_t>(cursor[static_cast<std::size_t>(cols[k])]++);
      t_rows_[slot] = i;
      t_values_[slot] = vals[k];
    }
  }
  t_built_ = true;

  // Segment grid: per-column offsets of each segment_rows-row window.
  // Skipped when a single segment would cover the matrix (the grid would
  // be the plain gather) or when the offset table would outweigh the data
  // it indexes (wide matrices: many columns, few windows' worth of rows).
  if (options.segment_rows > 0 && rows_ > options.segment_rows && cols_ > 0) {
    const Index num_segs =
        (rows_ + options.segment_rows - 1) / options.segment_rows;
    const Real grid_cost = static_cast<Real>((num_segs + 1) * cols_);
    if (grid_cost <=
        options.max_segment_index_ratio * static_cast<Real>(nnz() + 1)) {
      t_segment_rows_ = options.segment_rows;
      t_window_bytes_ = std::max<Index>(1, options.window_bytes);
      t_seg_starts_.assign(
          static_cast<std::size_t>((num_segs + 1) * cols_), 0);
      for (Index j = 0; j < cols_; ++j) {
        auto e = static_cast<std::size_t>(t_offsets_[static_cast<std::size_t>(j)]);
        const auto e_end =
            static_cast<std::size_t>(t_offsets_[static_cast<std::size_t>(j) + 1]);
        for (Index s = 0; s <= num_segs; ++s) {
          const Index row_lo = s * t_segment_rows_;
          while (e < e_end && t_rows_[e] < row_lo) ++e;
          t_seg_starts_[static_cast<std::size_t>(s * cols_ + j)] =
              static_cast<Index>(e);
        }
      }
    }
  }

  // The kernel plan, built here (setup time) so the apply-time dispatch is
  // one table walk: measured on this matrix via the shape-bucket memo, or
  // the heuristic when tuning is off. Either way the plan only selects
  // between the two bit-identical gathers, so this decision can never
  // change results (see kernel_plan.hpp).
  plan_ = options.autotune.enable
              ? cached_transpose_plan(*this, options.autotune)
              : KernelPlan::heuristic(has_segment_index());
}

void Csr::apply_transpose(const Vector& x, Vector& y) const {
  PSDP_CHECK(x.size() == rows_, "csr apply_transpose: dimension mismatch");
  if (y.size() != cols_) y = Vector(cols_);
  if (t_built_) {
    // Transpose-index gather through the dispatch seam (width 1): one pass
    // over the nonzeros, each output reduced serially in row order
    // (thread-count independent).
    const simd::KernelTable& kt = simd::active_kernels();
    par::parallel_for_chunked(0, cols_, [&](Index jb, Index je) {
      kt.gather_panel(t_offsets_.data(), t_rows_.data(), t_values_.data(),
                      jb, je, 1, x.data(), y.data());
    }, /*grain=*/64);
    par::CostMeter::add_work(static_cast<std::uint64_t>(2 * nnz()));
    par::CostMeter::add_depth(par::reduction_depth(rows_));
    return;
  }
  y.fill(0);
  // Serial scatter per thread would race; with the moderate sizes used here
  // a row sweep with owned output blocks keeps determinism.
  par::parallel_for_chunked(0, cols_, [&](Index jb, Index je) {
    for (Index i = 0; i < rows_; ++i) {
      const auto cols = row_cols(i);
      const auto vals = row_vals(i);
      const Real xi = x[i];
      if (xi == 0) continue;
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const Index j = cols[k];
        if (j >= jb && j < je) y[j] += xi * vals[k];
      }
    }
  }, /*grain=*/256);
  par::CostMeter::add_work(static_cast<std::uint64_t>(2 * nnz()));
  par::CostMeter::add_depth(par::reduction_depth(rows_));
}

Vector Csr::apply_transpose(const Vector& x) const {
  Vector y(cols_);
  apply_transpose(x, y);
  return y;
}

void Csr::apply_block(const Matrix& x, Matrix& y) const {
  PSDP_CHECK(x.rows() == cols_, "csr apply_block: dimension mismatch");
  const Index b = x.cols();
  PSDP_CHECK(b >= 1, "csr apply_block: panel must have at least one column");
  y.reshape(rows_, b);
  // Row-parallel SpMM through the dispatch seam: one pass over the nonzeros
  // serves all b columns. The grain shrinks with b so chunks stay at
  // comparable work to apply()'s.
  const Index grain = std::max<Index>(1, 64 / b);
  const simd::KernelTable& kt = simd::active_kernels();
  par::parallel_for_chunked(0, rows_, [&](Index ib, Index ie) {
    kt.spmm_rows(offsets_.data(), columns_.data(), values_.data(), ib, ie, b,
                 x.data(), y.data());
  }, grain);
  par::CostMeter::add_work(static_cast<std::uint64_t>(2 * nnz() * b));
  par::CostMeter::add_depth(par::reduction_depth(cols_));
}

void Csr::apply_transpose_block(const Matrix& x, Matrix& y) const {
  std::vector<Real> partial;
  apply_transpose_block(x, y, partial);
}

void Csr::apply_transpose_block(const Matrix& x, Matrix& y,
                                std::vector<Real>& partial) const {
  apply_transpose_block(x, y, partial, nullptr);
}

void Csr::apply_transpose_block(const Matrix& x, Matrix& y,
                                std::vector<Real>& partial,
                                const KernelPlan* plan) const {
  if (!t_built_) {
    apply_transpose_block_owned(x, y, partial);
    return;
  }
  // A caller-provided plan is honored only when its provenance matches the
  // running kernel set and active ISA: a stale plan (deserialized from an
  // older revision, or tuned under another dispatch target) carries timings
  // about kernels this process does not run, so the matrix's own plan --
  // freshly stamped at build_transpose_index() time -- decides instead.
  const KernelPlan& p =
      plan != nullptr && !plan->entries().empty() && !plan->stale() ? *plan
                                                                    : plan_;
  switch (p.choose(x.cols())) {
    case TransposeKernel::kSegmented:
      if (has_segment_index()) {
        apply_transpose_block_segmented(x, y);
        return;
      }
      // No grid on this matrix: the plain gather is the bit-identical twin.
      [[fallthrough]];
    case TransposeKernel::kGather:
      apply_transpose_block_indexed(x, y);
      return;
    case TransposeKernel::kScatter:
      apply_transpose_block_owned(x, y, partial);
      return;
  }
}

void Csr::apply_transpose_block_owned(const Matrix& x, Matrix& y,
                                      std::vector<Real>& partial) const {
  PSDP_CHECK(x.rows() == rows_, "csr apply_transpose_block: dimension mismatch");
  const Index b = x.cols();
  PSDP_CHECK(b >= 1,
             "csr apply_transpose_block: panel must have at least one column");
  y.reshape(cols_, b);
  // Parallel over *row* chunks -- the panels come from factors Q_i whose
  // column count is often tiny, so column ownership would serialize. Each
  // chunk scatters into its own cols_ x b accumulator; the partials are
  // combined in chunk order on the calling thread, which keeps the result
  // deterministic for a fixed thread count.
  const Index grain = std::max<Index>(1, 256 / b);
  const Index max_chunks = std::max<Index>(1, par::num_threads());
  const Index chunks =
      std::clamp<Index>((rows_ + grain - 1) / grain, 1, max_chunks);
  const simd::KernelTable& kt = simd::active_kernels();
  const auto scatter_rows = [&](Index begin, Index end, Real* out) {
    kt.scatter_rows(offsets_.data(), columns_.data(), values_.data(), begin,
                    end, b, x.data(), out);
  };
  if (chunks == 1) {
    y.fill(0);
    scatter_rows(0, rows_, y.data());
  } else {
    partial.assign(static_cast<std::size_t>(chunks * cols_ * b), 0);
    const Index chunk_size = (rows_ + chunks - 1) / chunks;
    par::global_pool().run_batch(chunks, [&](Index c) {
      scatter_rows(c * chunk_size, std::min(rows_, (c + 1) * chunk_size),
                   partial.data() + c * cols_ * b);
    });
    y.fill(0);
    Real* out = y.data();
    for (Index c = 0; c < chunks; ++c) {
      const Real* part = partial.data() + c * cols_ * b;
      for (Index idx = 0; idx < cols_ * b; ++idx) out[idx] += part[idx];
    }
  }
  par::CostMeter::add_work(static_cast<std::uint64_t>(2 * nnz() * b));
  par::CostMeter::add_depth(par::reduction_depth(rows_));
}

void Csr::apply_transpose_block_indexed(const Matrix& x, Matrix& y) const {
  PSDP_CHECK(t_built_,
             "csr apply_transpose_block_indexed: call build_transpose_index()");
  PSDP_CHECK(x.rows() == rows_, "csr apply_transpose_block: dimension mismatch");
  const Index b = x.cols();
  PSDP_CHECK(b >= 1,
             "csr apply_transpose_block: panel must have at least one column");
  y.reshape(cols_, b);
  // Chunk the columns so a chunk carries a few thousand entry updates; the
  // per-column entry spans are contiguous in the index, so each chunk is
  // one streaming pass.
  const Index avg_work =
      std::max<Index>(1, (nnz() * b) / std::max<Index>(1, cols_));
  const Index grain = std::max<Index>(1, 4096 / avg_work);
  // Width dispatch (the compile-time-B register kernels for the common
  // widths) now lives inside the backend's gather_panel.
  const simd::KernelTable& kt = simd::active_kernels();
  par::parallel_for_chunked(0, cols_, [&](Index jb, Index je) {
    kt.gather_panel(t_offsets_.data(), t_rows_.data(), t_values_.data(), jb,
                    je, b, x.data(), y.data());
  }, grain);
  par::CostMeter::add_work(static_cast<std::uint64_t>(2 * nnz() * b));
  par::CostMeter::add_depth(par::reduction_depth(rows_));
}

void Csr::apply_transpose_block_segmented(const Matrix& x, Matrix& y) const {
  PSDP_CHECK(has_segment_index(),
             "csr apply_transpose_block_segmented: no segment grid (see "
             "TransposePlanOptions::segment_rows)");
  PSDP_CHECK(x.rows() == rows_, "csr apply_transpose_block: dimension mismatch");
  const Index b = x.cols();
  PSDP_CHECK(b >= 1,
             "csr apply_transpose_block: panel must have at least one column");
  const Index num_segs = (rows_ + t_segment_rows_ - 1) / t_segment_rows_;
  // Window = as many base segments as keep the x-slice near the build-time
  // window_bytes target (all threads share a window, so it is sized for
  // the shared cache level). Any grouping gives the same bits (ascending-
  // row reduction per output either way), so this is a pure locality knob
  // -- and a single window covering everything *is* the plain gather,
  // minus this function's windowing overhead, so delegate.
  const Index group = std::clamp<Index>(
      t_window_bytes_ / std::max<Index>(1, t_segment_rows_ * b * 8), 1,
      num_segs);
  if (group >= num_segs) {
    apply_transpose_block_indexed(x, y);
    return;
  }
  y.reshape(cols_, b);
  y.fill(0);
  const Index windows = (num_segs + group - 1) / group;
  // Per-window column grain: a chunk should carry a few thousand entry
  // updates of *this window's* share of the nonzeros.
  const Index avg_work = std::max<Index>(
      1, (nnz() * b) / std::max<Index>(1, cols_ * windows));
  const Index grain = std::max<Index>(1, 4096 / avg_work);
  // Windows sweep sequentially with the column-parallel fold inside each
  // one: every thread works the same cache-resident x-slice, and each
  // output is still one ascending-row reduction across the windows.
  const simd::KernelTable& kt = simd::active_kernels();
  for (Index s0 = 0; s0 < num_segs; s0 += group) {
    const Index s1 = std::min(num_segs, s0 + group);
    par::parallel_for_chunked(0, cols_, [&](Index jb, Index je) {
      kt.gather_window(t_seg_starts_.data(), s0, s1, cols_, t_rows_.data(),
                       t_values_.data(), jb, je, b, x.data(), y.data());
    }, grain);
  }
  par::CostMeter::add_work(static_cast<std::uint64_t>(2 * nnz() * b));
  par::CostMeter::add_depth(static_cast<std::uint64_t>(windows) *
                            par::reduction_depth(cols_));
}

void Csr::fill_float_values(std::vector<float>& values_f,
                            std::vector<float>& t_values_f) const {
  values_f.resize(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    values_f[i] = static_cast<float>(values_[i]);
  }
  if (t_built_) {
    t_values_f.resize(t_values_.size());
    for (std::size_t i = 0; i < t_values_.size(); ++i) {
      t_values_f[i] = static_cast<float>(t_values_[i]);
    }
  } else {
    t_values_f.clear();
  }
}

void Csr::apply_block_f(const MatrixF& x, MatrixF& y,
                        std::span<const float> values_f) const {
  PSDP_CHECK(x.rows() == cols_, "csr apply_block_f: dimension mismatch");
  PSDP_CHECK(static_cast<Index>(values_f.size()) == nnz(),
             "csr apply_block_f: float value copy out of date");
  const Index b = x.cols();
  PSDP_CHECK(b >= 1, "csr apply_block_f: panel must have at least one column");
  y.reshape(rows_, b);
  const Index grain = std::max<Index>(1, 64 / b);
  const simd::KernelTable& kt = simd::active_kernels();
  par::parallel_for_chunked(0, rows_, [&](Index ib, Index ie) {
    kt.spmm_rows_f(offsets_.data(), columns_.data(), values_f.data(), ib, ie,
                   b, x.data(), y.data());
  }, grain);
  par::CostMeter::add_work(static_cast<std::uint64_t>(2 * nnz() * b));
  par::CostMeter::add_depth(par::reduction_depth(cols_));
}

void Csr::apply_transpose_block_f(const MatrixF& x, MatrixF& y,
                                  std::span<const float> values_f,
                                  std::span<const float> t_values_f,
                                  std::vector<float>& partial) const {
  PSDP_CHECK(x.rows() == rows_,
             "csr apply_transpose_block_f: dimension mismatch");
  const Index b = x.cols();
  PSDP_CHECK(b >= 1,
             "csr apply_transpose_block_f: panel must have at least one "
             "column");
  y.reshape(cols_, b);
  const simd::KernelTable& kt = simd::active_kernels();
  if (t_built_) {
    PSDP_CHECK(static_cast<Index>(t_values_f.size()) == nnz(),
               "csr apply_transpose_block_f: float CSC copy out of date");
    const Index avg_work =
        std::max<Index>(1, (nnz() * b) / std::max<Index>(1, cols_));
    const Index grain = std::max<Index>(1, 4096 / avg_work);
    par::parallel_for_chunked(0, cols_, [&](Index jb, Index je) {
      kt.gather_panel_f(t_offsets_.data(), t_rows_.data(), t_values_f.data(),
                        jb, je, b, x.data(), y.data());
    }, grain);
  } else {
    PSDP_CHECK(static_cast<Index>(values_f.size()) == nnz(),
               "csr apply_transpose_block_f: float value copy out of date");
    // Owned-column scatter over row chunks, mirroring
    // apply_transpose_block_owned (chunk-order combine, deterministic for a
    // fixed thread count).
    const Index grain = std::max<Index>(1, 256 / b);
    const Index max_chunks = std::max<Index>(1, par::num_threads());
    const Index chunks =
        std::clamp<Index>((rows_ + grain - 1) / grain, 1, max_chunks);
    const auto scatter = [&](Index begin, Index end, float* out) {
      kt.scatter_rows_f(offsets_.data(), columns_.data(), values_f.data(),
                        begin, end, b, x.data(), out);
    };
    if (chunks == 1) {
      y.fill(0);
      scatter(0, rows_, y.data());
    } else {
      partial.assign(static_cast<std::size_t>(chunks * cols_ * b), 0);
      const Index chunk_size = (rows_ + chunks - 1) / chunks;
      par::global_pool().run_batch(chunks, [&](Index c) {
        scatter(c * chunk_size, std::min(rows_, (c + 1) * chunk_size),
                partial.data() + c * cols_ * b);
      });
      y.fill(0);
      float* out = y.data();
      for (Index c = 0; c < chunks; ++c) {
        const float* part = partial.data() + c * cols_ * b;
        for (Index idx = 0; idx < cols_ * b; ++idx) out[idx] += part[idx];
      }
    }
  }
  par::CostMeter::add_work(static_cast<std::uint64_t>(2 * nnz() * b));
  par::CostMeter::add_depth(par::reduction_depth(rows_));
}

Csr& Csr::scale(Real s) {
  for (Real& v : values_) v *= s;
  for (Real& v : t_values_) v *= s;  // keep the cached CSC view in sync
  return *this;
}

Matrix Csr::to_dense() const {
  Matrix dense(rows_, cols_);
  for (Index i = 0; i < rows_; ++i) {
    const auto cols = row_cols(i);
    const auto vals = row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) dense(i, cols[k]) = vals[k];
  }
  return dense;
}

Real Csr::frobenius_norm2() const {
  Real acc = 0;
  for (Real v : values_) acc += v * v;
  return acc;
}

Real Csr::trace() const {
  PSDP_CHECK(rows_ == cols_, "csr trace: matrix must be square");
  Real acc = 0;
  for (Index i = 0; i < rows_; ++i) {
    const auto cols = row_cols(i);
    const auto vals = row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == i) acc += vals[k];
    }
  }
  return acc;
}

Csr add_scaled(const Csr& a, const Csr& b, Real s) {
  PSDP_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
             "csr add_scaled: dimension mismatch");
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(a.nnz() + b.nnz()));
  for (Index i = 0; i < a.rows(); ++i) {
    const auto ac = a.row_cols(i);
    const auto av = a.row_vals(i);
    for (std::size_t k = 0; k < ac.size(); ++k) triplets.push_back({i, ac[k], av[k]});
    const auto bc = b.row_cols(i);
    const auto bv = b.row_vals(i);
    for (std::size_t k = 0; k < bc.size(); ++k) {
      triplets.push_back({i, bc[k], s * bv[k]});
    }
  }
  return Csr::from_triplets(a.rows(), a.cols(), std::move(triplets));
}

}  // namespace psdp::sparse
