#include "sparse/csr.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>

#include "par/cost_meter.hpp"
#include "par/parallel.hpp"

namespace psdp::sparse {

Csr Csr::from_triplets(Index rows, Index cols, std::vector<Triplet> triplets) {
  PSDP_CHECK(rows >= 0 && cols >= 0, "csr: dimensions must be non-negative");
  for (const Triplet& t : triplets) {
    PSDP_CHECK(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols,
               str("csr: triplet (", t.row, ",", t.col, ") out of range"));
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  Csr m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.offsets_.assign(static_cast<std::size_t>(rows) + 1, 0);
  m.columns_.reserve(triplets.size());
  m.values_.reserve(triplets.size());

  std::size_t i = 0;
  for (Index r = 0; r < rows; ++r) {
    m.offsets_[static_cast<std::size_t>(r)] = static_cast<Index>(m.values_.size());
    while (i < triplets.size() && triplets[i].row == r) {
      const Index c = triplets[i].col;
      Real v = 0;
      while (i < triplets.size() && triplets[i].row == r && triplets[i].col == c) {
        v += triplets[i].value;
        ++i;
      }
      if (v != 0) {
        m.columns_.push_back(c);
        m.values_.push_back(v);
      }
    }
  }
  m.offsets_[static_cast<std::size_t>(rows)] = static_cast<Index>(m.values_.size());
  return m;
}

Csr Csr::from_dense(const Matrix& dense, Real drop_tol) {
  std::vector<Triplet> triplets;
  for (Index i = 0; i < dense.rows(); ++i) {
    for (Index j = 0; j < dense.cols(); ++j) {
      if (std::abs(dense(i, j)) > drop_tol) {
        triplets.push_back({i, j, dense(i, j)});
      }
    }
  }
  return from_triplets(dense.rows(), dense.cols(), std::move(triplets));
}

Csr Csr::identity(Index n) {
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) triplets.push_back({i, i, 1});
  return from_triplets(n, n, std::move(triplets));
}

std::span<const Index> Csr::row_cols(Index i) const {
  PSDP_ASSERT(i >= 0 && i < rows_);
  const auto b = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(i)]);
  const auto e = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(i) + 1]);
  return {columns_.data() + b, e - b};
}

std::span<const Real> Csr::row_vals(Index i) const {
  PSDP_ASSERT(i >= 0 && i < rows_);
  const auto b = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(i)]);
  const auto e = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(i) + 1]);
  return {values_.data() + b, e - b};
}

void Csr::apply(const Vector& x, Vector& y) const {
  PSDP_CHECK(x.size() == cols_, "csr apply: dimension mismatch");
  if (y.size() != rows_) y = Vector(rows_);
  par::parallel_for(0, rows_, [&](Index i) {
    const auto cols = row_cols(i);
    const auto vals = row_vals(i);
    Real acc = 0;
    for (std::size_t k = 0; k < cols.size(); ++k) acc += vals[k] * x[cols[k]];
    y[i] = acc;
  }, /*grain=*/64);
  par::CostMeter::add_work(static_cast<std::uint64_t>(2 * nnz()));
  par::CostMeter::add_depth(par::reduction_depth(cols_));
}

Vector Csr::apply(const Vector& x) const {
  Vector y(rows_);
  apply(x, y);
  return y;
}

namespace {
/// Process-wide count of actual (non-idempotent) transpose-index builds;
/// the serve layer's cache-reuse assertions read it (see csr.hpp).
std::atomic<std::uint64_t> g_transpose_index_builds{0};
}  // namespace

std::uint64_t transpose_index_build_count() {
  return g_transpose_index_builds.load(std::memory_order_relaxed);
}

void Csr::build_transpose_index() { build_transpose_index({}); }

void Csr::build_transpose_index(const TransposePlanOptions& options) {
  if (t_built_) return;
  g_transpose_index_builds.fetch_add(1, std::memory_order_relaxed);
  t_offsets_.assign(static_cast<std::size_t>(cols_) + 1, 0);
  t_rows_.resize(values_.size());
  t_values_.resize(values_.size());
  // Counting sort by column; scanning rows in order makes the rows within
  // each column ascending, which is what pins the gather's accumulation
  // order to the owned-column sweep's (bitwise agreement).
  for (const Index c : columns_) ++t_offsets_[static_cast<std::size_t>(c) + 1];
  for (Index j = 0; j < cols_; ++j) {
    t_offsets_[static_cast<std::size_t>(j) + 1] +=
        t_offsets_[static_cast<std::size_t>(j)];
  }
  std::vector<Index> cursor(t_offsets_.begin(), t_offsets_.end() - 1);
  for (Index i = 0; i < rows_; ++i) {
    const auto cols = row_cols(i);
    const auto vals = row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const auto slot =
          static_cast<std::size_t>(cursor[static_cast<std::size_t>(cols[k])]++);
      t_rows_[slot] = i;
      t_values_[slot] = vals[k];
    }
  }
  t_built_ = true;

  // Segment grid: per-column offsets of each segment_rows-row window.
  // Skipped when a single segment would cover the matrix (the grid would
  // be the plain gather) or when the offset table would outweigh the data
  // it indexes (wide matrices: many columns, few windows' worth of rows).
  if (options.segment_rows > 0 && rows_ > options.segment_rows && cols_ > 0) {
    const Index num_segs =
        (rows_ + options.segment_rows - 1) / options.segment_rows;
    const Real grid_cost = static_cast<Real>((num_segs + 1) * cols_);
    if (grid_cost <=
        options.max_segment_index_ratio * static_cast<Real>(nnz() + 1)) {
      t_segment_rows_ = options.segment_rows;
      t_window_bytes_ = std::max<Index>(1, options.window_bytes);
      t_seg_starts_.assign(
          static_cast<std::size_t>((num_segs + 1) * cols_), 0);
      for (Index j = 0; j < cols_; ++j) {
        auto e = static_cast<std::size_t>(t_offsets_[static_cast<std::size_t>(j)]);
        const auto e_end =
            static_cast<std::size_t>(t_offsets_[static_cast<std::size_t>(j) + 1]);
        for (Index s = 0; s <= num_segs; ++s) {
          const Index row_lo = s * t_segment_rows_;
          while (e < e_end && t_rows_[e] < row_lo) ++e;
          t_seg_starts_[static_cast<std::size_t>(s * cols_ + j)] =
              static_cast<Index>(e);
        }
      }
    }
  }

  // The kernel plan, built here (setup time) so the apply-time dispatch is
  // one table walk: measured on this matrix via the shape-bucket memo, or
  // the heuristic when tuning is off. Either way the plan only selects
  // between the two bit-identical gathers, so this decision can never
  // change results (see kernel_plan.hpp).
  plan_ = options.autotune.enable
              ? cached_transpose_plan(*this, options.autotune)
              : KernelPlan::heuristic(has_segment_index());
}

namespace {

/// Gather kernel for one span of output columns: output row j of Y is the
/// serial row-order reduction of column j's entries, with the accumulator
/// row held in registers (B known at compile time for the common widths).
template <int B>
void gather_columns(const std::vector<Index>& offsets,
                    const std::vector<Index>& rows,
                    const std::vector<Real>& values, Index jb, Index je,
                    const Real* x, Real* y) {
  for (Index j = jb; j < je; ++j) {
    Real acc[B] = {};
    const auto b0 = static_cast<std::size_t>(offsets[static_cast<std::size_t>(j)]);
    const auto e0 =
        static_cast<std::size_t>(offsets[static_cast<std::size_t>(j) + 1]);
    for (std::size_t e = b0; e < e0; ++e) {
      const Real v = values[e];
      const Real* in = x + rows[e] * B;
      for (int t = 0; t < B; ++t) acc[t] += v * in[t];
    }
    Real* out = y + j * B;
    for (int t = 0; t < B; ++t) out[t] = acc[t];
  }
}

/// Runtime-width fallback of the gather kernel.
void gather_columns_any(const std::vector<Index>& offsets,
                        const std::vector<Index>& rows,
                        const std::vector<Real>& values, Index jb, Index je,
                        Index b, const Real* x, Real* y) {
  for (Index j = jb; j < je; ++j) {
    Real* out = y + j * b;
    std::fill(out, out + b, Real{0});
    const auto b0 = static_cast<std::size_t>(offsets[static_cast<std::size_t>(j)]);
    const auto e0 =
        static_cast<std::size_t>(offsets[static_cast<std::size_t>(j) + 1]);
    for (std::size_t e = b0; e < e0; ++e) {
      const Real v = values[e];
      const Real* in = x + rows[e] * b;
      for (Index t = 0; t < b; ++t) out[t] += v * in[t];
    }
  }
}

/// One window of the segmented-column gather, for one span of output
/// columns: every owned column folds its window-local entry span
/// (contiguous in the CSC arrays; adjacent windows' spans concatenate)
/// onto its accumulator row with a load-modify-store through y. Windows
/// are swept sequentially by the caller with all threads inside the same
/// window, so each output still reduces in ascending row order -- bitwise
/// identical to gather_columns for any window size -- while the window's
/// input-panel slice is shared cache-hot across every thread.
/// Entries of software-prefetch lead inside the windowed gather's fold
/// loop: a column's window-local rows are ascending but ~cols rows apart,
/// which the hardware prefetcher cannot follow -- issuing the fetch of
/// entry e + kGatherPrefetch while folding entry e hides the latency the
/// scatter gets for free from its sequential streaming. Prefetching is
/// invisible to the results.
constexpr std::size_t kGatherPrefetch = 12;

template <int B>
inline void prefetch_panel_row(const Real* in) {
#if defined(__GNUC__) || defined(__clang__)
  // One prefetch per cache line of the b-wide panel row (64 bytes = 8
  // Reals).
  for (int t = 0; t < B; t += 8) __builtin_prefetch(in + t, 0, 1);
#else
  (void)in;
#endif
}

template <int B>
void gather_columns_window(const std::vector<Index>& seg_starts, Index s0,
                           Index s1, Index cols,
                           const std::vector<Index>& rows,
                           const std::vector<Real>& values, Index jb,
                           Index je, const Real* x, Real* y) {
  for (Index j = jb; j < je; ++j) {
    const auto b0 =
        static_cast<std::size_t>(seg_starts[static_cast<std::size_t>(s0 * cols + j)]);
    const auto e0 =
        static_cast<std::size_t>(seg_starts[static_cast<std::size_t>(s1 * cols + j)]);
    if (b0 == e0) continue;
    Real acc[B];
    Real* out = y + j * B;
    for (int t = 0; t < B; ++t) acc[t] = out[t];
    for (std::size_t e = b0; e < e0; ++e) {
      // Sub-cache-line panel rows (B < 4) reuse lines across nearby rows
      // anyway; the prefetch would be pure per-entry overhead there.
      if constexpr (B >= 4) {
        if (e + kGatherPrefetch < e0) {
          prefetch_panel_row<B>(x + rows[e + kGatherPrefetch] * B);
        }
      }
      const Real v = values[e];
      const Real* in = x + rows[e] * B;
      for (int t = 0; t < B; ++t) acc[t] += v * in[t];
    }
    for (int t = 0; t < B; ++t) out[t] = acc[t];
  }
}

/// Runtime-width fallback of the windowed gather.
void gather_columns_window_any(const std::vector<Index>& seg_starts, Index s0,
                               Index s1, Index cols,
                               const std::vector<Index>& rows,
                               const std::vector<Real>& values, Index jb,
                               Index je, Index b, const Real* x, Real* y) {
  for (Index j = jb; j < je; ++j) {
    const auto b0 =
        static_cast<std::size_t>(seg_starts[static_cast<std::size_t>(s0 * cols + j)]);
    const auto e0 =
        static_cast<std::size_t>(seg_starts[static_cast<std::size_t>(s1 * cols + j)]);
    Real* out = y + j * b;
    for (std::size_t e = b0; e < e0; ++e) {
      const Real v = values[e];
      const Real* in = x + rows[e] * b;
      for (Index t = 0; t < b; ++t) out[t] += v * in[t];
    }
  }
}

}  // namespace

void Csr::apply_transpose(const Vector& x, Vector& y) const {
  PSDP_CHECK(x.size() == rows_, "csr apply_transpose: dimension mismatch");
  if (y.size() != cols_) y = Vector(cols_);
  if (t_built_) {
    // Transpose-index gather: one pass over the nonzeros, each output
    // reduced serially in row order (thread-count independent).
    par::parallel_for_chunked(0, cols_, [&](Index jb, Index je) {
      gather_columns<1>(t_offsets_, t_rows_, t_values_, jb, je, x.data(),
                        y.data());
    }, /*grain=*/64);
    par::CostMeter::add_work(static_cast<std::uint64_t>(2 * nnz()));
    par::CostMeter::add_depth(par::reduction_depth(rows_));
    return;
  }
  y.fill(0);
  // Serial scatter per thread would race; with the moderate sizes used here
  // a row sweep with owned output blocks keeps determinism.
  par::parallel_for_chunked(0, cols_, [&](Index jb, Index je) {
    for (Index i = 0; i < rows_; ++i) {
      const auto cols = row_cols(i);
      const auto vals = row_vals(i);
      const Real xi = x[i];
      if (xi == 0) continue;
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const Index j = cols[k];
        if (j >= jb && j < je) y[j] += xi * vals[k];
      }
    }
  }, /*grain=*/256);
  par::CostMeter::add_work(static_cast<std::uint64_t>(2 * nnz()));
  par::CostMeter::add_depth(par::reduction_depth(rows_));
}

Vector Csr::apply_transpose(const Vector& x) const {
  Vector y(cols_);
  apply_transpose(x, y);
  return y;
}

void Csr::apply_block(const Matrix& x, Matrix& y) const {
  PSDP_CHECK(x.rows() == cols_, "csr apply_block: dimension mismatch");
  const Index b = x.cols();
  PSDP_CHECK(b >= 1, "csr apply_block: panel must have at least one column");
  y.reshape(rows_, b);
  // Row-parallel SpMM: one pass over the nonzeros serves all b columns. The
  // grain shrinks with b so chunks stay at comparable work to apply()'s.
  const Index grain = std::max<Index>(1, 64 / b);
  par::parallel_for(0, rows_, [&](Index i) {
    const auto cols = row_cols(i);
    const auto vals = row_vals(i);
    Real* out = y.data() + i * b;
    std::fill(out, out + b, Real{0});
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const Real v = vals[k];
      const Real* in = x.data() + cols[k] * b;
      for (Index t = 0; t < b; ++t) out[t] += v * in[t];
    }
  }, grain);
  par::CostMeter::add_work(static_cast<std::uint64_t>(2 * nnz() * b));
  par::CostMeter::add_depth(par::reduction_depth(cols_));
}

void Csr::apply_transpose_block(const Matrix& x, Matrix& y) const {
  std::vector<Real> partial;
  apply_transpose_block(x, y, partial);
}

void Csr::apply_transpose_block(const Matrix& x, Matrix& y,
                                std::vector<Real>& partial) const {
  apply_transpose_block(x, y, partial, nullptr);
}

void Csr::apply_transpose_block(const Matrix& x, Matrix& y,
                                std::vector<Real>& partial,
                                const KernelPlan* plan) const {
  if (!t_built_) {
    apply_transpose_block_owned(x, y, partial);
    return;
  }
  const KernelPlan& p =
      plan != nullptr && !plan->entries().empty() ? *plan : plan_;
  switch (p.choose(x.cols())) {
    case TransposeKernel::kSegmented:
      if (has_segment_index()) {
        apply_transpose_block_segmented(x, y);
        return;
      }
      // No grid on this matrix: the plain gather is the bit-identical twin.
      [[fallthrough]];
    case TransposeKernel::kGather:
      apply_transpose_block_indexed(x, y);
      return;
    case TransposeKernel::kScatter:
      apply_transpose_block_owned(x, y, partial);
      return;
  }
}

void Csr::apply_transpose_block_owned(const Matrix& x, Matrix& y,
                                      std::vector<Real>& partial) const {
  PSDP_CHECK(x.rows() == rows_, "csr apply_transpose_block: dimension mismatch");
  const Index b = x.cols();
  PSDP_CHECK(b >= 1,
             "csr apply_transpose_block: panel must have at least one column");
  y.reshape(cols_, b);
  // Parallel over *row* chunks -- the panels come from factors Q_i whose
  // column count is often tiny, so column ownership would serialize. Each
  // chunk scatters into its own cols_ x b accumulator; the partials are
  // combined in chunk order on the calling thread, which keeps the result
  // deterministic for a fixed thread count.
  const Index grain = std::max<Index>(1, 256 / b);
  const Index max_chunks = std::max<Index>(1, par::num_threads());
  const Index chunks =
      std::clamp<Index>((rows_ + grain - 1) / grain, 1, max_chunks);
  const auto scatter_rows = [&](Index begin, Index end, Real* out) {
    for (Index i = begin; i < end; ++i) {
      const auto cols = row_cols(i);
      const auto vals = row_vals(i);
      const Real* in = x.data() + i * b;
      for (std::size_t k = 0; k < cols.size(); ++k) {
        Real* row = out + cols[k] * b;
        const Real v = vals[k];
        for (Index t = 0; t < b; ++t) row[t] += v * in[t];
      }
    }
  };
  if (chunks == 1) {
    y.fill(0);
    scatter_rows(0, rows_, y.data());
  } else {
    partial.assign(static_cast<std::size_t>(chunks * cols_ * b), 0);
    const Index chunk_size = (rows_ + chunks - 1) / chunks;
    par::global_pool().run_batch(chunks, [&](Index c) {
      scatter_rows(c * chunk_size, std::min(rows_, (c + 1) * chunk_size),
                   partial.data() + c * cols_ * b);
    });
    y.fill(0);
    Real* out = y.data();
    for (Index c = 0; c < chunks; ++c) {
      const Real* part = partial.data() + c * cols_ * b;
      for (Index idx = 0; idx < cols_ * b; ++idx) out[idx] += part[idx];
    }
  }
  par::CostMeter::add_work(static_cast<std::uint64_t>(2 * nnz() * b));
  par::CostMeter::add_depth(par::reduction_depth(rows_));
}

void Csr::apply_transpose_block_indexed(const Matrix& x, Matrix& y) const {
  PSDP_CHECK(t_built_,
             "csr apply_transpose_block_indexed: call build_transpose_index()");
  PSDP_CHECK(x.rows() == rows_, "csr apply_transpose_block: dimension mismatch");
  const Index b = x.cols();
  PSDP_CHECK(b >= 1,
             "csr apply_transpose_block: panel must have at least one column");
  y.reshape(cols_, b);
  // Chunk the columns so a chunk carries a few thousand entry updates; the
  // per-column entry spans are contiguous in the index, so each chunk is
  // one streaming pass.
  const Index avg_work =
      std::max<Index>(1, (nnz() * b) / std::max<Index>(1, cols_));
  const Index grain = std::max<Index>(1, 4096 / avg_work);
  par::parallel_for_chunked(0, cols_, [&](Index jb, Index je) {
    switch (b) {
      case 1:
        gather_columns<1>(t_offsets_, t_rows_, t_values_, jb, je, x.data(),
                          y.data());
        break;
      case 2:
        gather_columns<2>(t_offsets_, t_rows_, t_values_, jb, je, x.data(),
                          y.data());
        break;
      case 4:
        gather_columns<4>(t_offsets_, t_rows_, t_values_, jb, je, x.data(),
                          y.data());
        break;
      case 8:
        gather_columns<8>(t_offsets_, t_rows_, t_values_, jb, je, x.data(),
                          y.data());
        break;
      case 16:
        gather_columns<16>(t_offsets_, t_rows_, t_values_, jb, je, x.data(),
                           y.data());
        break;
      case 32:
        gather_columns<32>(t_offsets_, t_rows_, t_values_, jb, je, x.data(),
                           y.data());
        break;
      default:
        gather_columns_any(t_offsets_, t_rows_, t_values_, jb, je, b,
                           x.data(), y.data());
        break;
    }
  }, grain);
  par::CostMeter::add_work(static_cast<std::uint64_t>(2 * nnz() * b));
  par::CostMeter::add_depth(par::reduction_depth(rows_));
}

void Csr::apply_transpose_block_segmented(const Matrix& x, Matrix& y) const {
  PSDP_CHECK(has_segment_index(),
             "csr apply_transpose_block_segmented: no segment grid (see "
             "TransposePlanOptions::segment_rows)");
  PSDP_CHECK(x.rows() == rows_, "csr apply_transpose_block: dimension mismatch");
  const Index b = x.cols();
  PSDP_CHECK(b >= 1,
             "csr apply_transpose_block: panel must have at least one column");
  const Index num_segs = (rows_ + t_segment_rows_ - 1) / t_segment_rows_;
  // Window = as many base segments as keep the x-slice near the build-time
  // window_bytes target (all threads share a window, so it is sized for
  // the shared cache level). Any grouping gives the same bits (ascending-
  // row reduction per output either way), so this is a pure locality knob
  // -- and a single window covering everything *is* the plain gather,
  // minus this function's windowing overhead, so delegate.
  const Index group = std::clamp<Index>(
      t_window_bytes_ / std::max<Index>(1, t_segment_rows_ * b * 8), 1,
      num_segs);
  if (group >= num_segs) {
    apply_transpose_block_indexed(x, y);
    return;
  }
  y.reshape(cols_, b);
  y.fill(0);
  const Index windows = (num_segs + group - 1) / group;
  // Per-window column grain: a chunk should carry a few thousand entry
  // updates of *this window's* share of the nonzeros.
  const Index avg_work = std::max<Index>(
      1, (nnz() * b) / std::max<Index>(1, cols_ * windows));
  const Index grain = std::max<Index>(1, 4096 / avg_work);
  // Windows sweep sequentially with the column-parallel fold inside each
  // one: every thread works the same cache-resident x-slice, and each
  // output is still one ascending-row reduction across the windows.
  for (Index s0 = 0; s0 < num_segs; s0 += group) {
    const Index s1 = std::min(num_segs, s0 + group);
    par::parallel_for_chunked(0, cols_, [&](Index jb, Index je) {
      switch (b) {
        case 1:
          gather_columns_window<1>(t_seg_starts_, s0, s1, cols_, t_rows_,
                                   t_values_, jb, je, x.data(), y.data());
          break;
        case 2:
          gather_columns_window<2>(t_seg_starts_, s0, s1, cols_, t_rows_,
                                   t_values_, jb, je, x.data(), y.data());
          break;
        case 4:
          gather_columns_window<4>(t_seg_starts_, s0, s1, cols_, t_rows_,
                                   t_values_, jb, je, x.data(), y.data());
          break;
        case 8:
          gather_columns_window<8>(t_seg_starts_, s0, s1, cols_, t_rows_,
                                   t_values_, jb, je, x.data(), y.data());
          break;
        case 16:
          gather_columns_window<16>(t_seg_starts_, s0, s1, cols_, t_rows_,
                                    t_values_, jb, je, x.data(), y.data());
          break;
        case 32:
          gather_columns_window<32>(t_seg_starts_, s0, s1, cols_, t_rows_,
                                    t_values_, jb, je, x.data(), y.data());
          break;
        default:
          gather_columns_window_any(t_seg_starts_, s0, s1, cols_, t_rows_,
                                    t_values_, jb, je, b, x.data(),
                                    y.data());
          break;
      }
    }, grain);
  }
  par::CostMeter::add_work(static_cast<std::uint64_t>(2 * nnz() * b));
  par::CostMeter::add_depth(static_cast<std::uint64_t>(windows) *
                            par::reduction_depth(cols_));
}

Csr& Csr::scale(Real s) {
  for (Real& v : values_) v *= s;
  for (Real& v : t_values_) v *= s;  // keep the cached CSC view in sync
  return *this;
}

Matrix Csr::to_dense() const {
  Matrix dense(rows_, cols_);
  for (Index i = 0; i < rows_; ++i) {
    const auto cols = row_cols(i);
    const auto vals = row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) dense(i, cols[k]) = vals[k];
  }
  return dense;
}

Real Csr::frobenius_norm2() const {
  Real acc = 0;
  for (Real v : values_) acc += v * v;
  return acc;
}

Real Csr::trace() const {
  PSDP_CHECK(rows_ == cols_, "csr trace: matrix must be square");
  Real acc = 0;
  for (Index i = 0; i < rows_; ++i) {
    const auto cols = row_cols(i);
    const auto vals = row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == i) acc += vals[k];
    }
  }
  return acc;
}

Csr add_scaled(const Csr& a, const Csr& b, Real s) {
  PSDP_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
             "csr add_scaled: dimension mismatch");
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(a.nnz() + b.nnz()));
  for (Index i = 0; i < a.rows(); ++i) {
    const auto ac = a.row_cols(i);
    const auto av = a.row_vals(i);
    for (std::size_t k = 0; k < ac.size(); ++k) triplets.push_back({i, ac[k], av[k]});
    const auto bc = b.row_cols(i);
    const auto bv = b.row_vals(i);
    for (std::size_t k = 0; k < bc.size(); ++k) {
      triplets.push_back({i, bc[k], s * bv[k]});
    }
  }
  return Csr::from_triplets(a.rows(), a.cols(), std::move(triplets));
}

}  // namespace psdp::sparse
