#include "sparse/factorized.hpp"

#include <cmath>

#include "linalg/eig.hpp"
#include "linalg/matfunc.hpp"
#include "par/parallel.hpp"

namespace psdp::sparse {

namespace {

/// Factor ranks above this skip the exact Gram eigenvalue and fall back to
/// the trace bound (the k x k eigensolve would cost O(k^3) at setup).
constexpr Index kGramEigMaxRank = 128;

/// Upper bound on lambda_max(Q Q^T) = lambda_max(Q^T Q); see
/// FactorizedPsd::lambda_max_bound.
Real factor_lambda_max_bound(const Csr& q) {
  const Real trace = q.frobenius_norm2();
  const Index k = q.cols();
  if (k > kGramEigMaxRank) return trace;
  Matrix gram(k, k);
  for (Index row = 0; row < q.rows(); ++row) {
    const auto cols = q.row_cols(row);
    const auto vals = q.row_vals(row);
    for (std::size_t a = 0; a < cols.size(); ++a) {
      for (std::size_t b = 0; b < cols.size(); ++b) {
        gram(cols[a], cols[b]) += vals[a] * vals[b];
      }
    }
  }
  const Real lmax = linalg::lambda_max_exact(gram) * (1 + 1e-9);
  return std::min(std::max<Real>(lmax, 0), trace);
}

}  // namespace

FactorizedPsd::FactorizedPsd(Csr q)
    : FactorizedPsd(std::move(q), TransposePlanOptions{}) {}

FactorizedPsd::FactorizedPsd(Csr q, const TransposePlanOptions& plan_options)
    : q_(std::move(q)) {
  PSDP_CHECK(q_.rows() >= 1, "factorized PSD: Q must have at least one row");
  // Tall factors get the cached CSC view: every Q^T application (two per
  // Taylor step on the sketched hot path) then runs the gather kernel
  // instead of the owned-column scatter.
  if (q_.rows() >=
      kTransposeIndexAspect * std::max<Index>(1, q_.cols())) {
    q_.build_transpose_index(plan_options);
  }
  lambda_bound_ = factor_lambda_max_bound(q_);
}

FactorizedPsd FactorizedPsd::scaled(Real s) const {
  PSDP_CHECK(s >= 0 && std::isfinite(s),
             "factorized PSD: scale must be non-negative finite");
  FactorizedPsd out = *this;  // keeps the transpose index
  out.q_.scale(std::sqrt(s));
  // lambda_max(s Q Q^T) = s lambda_max(Q Q^T); the cached bound's 1e-9
  // inflation dwarfs the sqrt's rounding, so scaling the bound (instead of
  // re-running the Gram eigensolve per probe) stays sound.
  out.lambda_bound_ = lambda_bound_ * s;
  return out;
}

FactorizedPsd FactorizedPsd::rank_one(const Vector& v, Real drop_tol) {
  std::vector<Triplet> triplets;
  for (Index i = 0; i < v.size(); ++i) {
    if (std::abs(v[i]) > drop_tol) triplets.push_back({i, 0, v[i]});
  }
  return FactorizedPsd(Csr::from_triplets(v.size(), 1, std::move(triplets)));
}

FactorizedPsd FactorizedPsd::from_dense_psd(const Matrix& a, Real tol) {
  const linalg::EigResult eig = linalg::jacobi_eig(a);
  const Real lmax = std::max(eig.eigenvalues[0], Real{0});
  const Real cutoff = tol * std::max(lmax, Real{1});
  PSDP_CHECK(eig.eigenvalues[eig.eigenvalues.size() - 1] >= -cutoff,
             "from_dense_psd: matrix is not PSD");
  std::vector<Triplet> triplets;
  Index k = 0;
  for (Index c = 0; c < eig.eigenvalues.size(); ++c) {
    if (eig.eigenvalues[c] <= cutoff) continue;
    const Real s = std::sqrt(eig.eigenvalues[c]);
    for (Index r = 0; r < a.rows(); ++r) {
      const Real v = s * eig.eigenvectors(r, c);
      if (v != 0) triplets.push_back({r, k, v});
    }
    ++k;
  }
  if (k == 0) k = 1;  // zero matrix: keep a valid empty m x 1 factor
  return FactorizedPsd(Csr::from_triplets(a.rows(), k, std::move(triplets)));
}

void FactorizedPsd::apply(const Vector& x, Vector& y) const {
  Vector scratch(q_.cols());
  q_.apply_transpose(x, scratch);
  q_.apply(scratch, y);
}

void FactorizedPsd::apply_block(const Matrix& x, Matrix& y,
                                Matrix& scratch) const {
  q_.apply_transpose_block(x, scratch);
  q_.apply_block(scratch, y);
}

void FactorizedPsd::apply_block(const Matrix& x, Matrix& y, Matrix& scratch,
                                std::vector<Real>& partial) const {
  q_.apply_transpose_block(x, scratch, partial);
  q_.apply_block(scratch, y);
}

void FactorizedPsd::apply_block(const Matrix& x, Matrix& y, Matrix& scratch,
                                std::vector<Real>& partial,
                                const KernelPlan* plan) const {
  q_.apply_transpose_block(x, scratch, partial, plan);
  q_.apply_block(scratch, y);
}

void FactorizedPsd::apply_block_f(const MatrixF& x, MatrixF& y,
                                  MatrixF& scratch,
                                  std::span<const float> values_f,
                                  std::span<const float> t_values_f,
                                  std::vector<float>& partial) const {
  q_.apply_transpose_block_f(x, scratch, values_f, t_values_f, partial);
  q_.apply_block_f(scratch, y, values_f);
}

Real FactorizedPsd::dot_dense(const Matrix& s) const {
  PSDP_CHECK(s.rows() == dim() && s.cols() == dim(),
             "dot_dense: dimension mismatch");
  // (Q Q^T) . S = sum_c q_c^T S q_c over columns q_c of Q. Work it row-wise:
  // sum_{i,j} S_ij (Q Q^T)_ij done as sum_i <row_i(Q), t_i> where
  // t = S Q columnwise is O(m^2 k); for sparse Q iterate entries directly.
  Real acc = 0;
  for (Index i = 0; i < q_.rows(); ++i) {
    const auto ci = q_.row_cols(i);
    const auto vi = q_.row_vals(i);
    if (ci.empty()) continue;
    for (Index j = 0; j < q_.rows(); ++j) {
      const auto cj = q_.row_cols(j);
      const auto vj = q_.row_vals(j);
      if (cj.empty()) continue;
      // (Q Q^T)_{ij} = <row_i, row_j> via sorted-merge.
      Real qij = 0;
      std::size_t a = 0, b = 0;
      while (a < ci.size() && b < cj.size()) {
        if (ci[a] == cj[b]) {
          qij += vi[a] * vj[b];
          ++a;
          ++b;
        } else if (ci[a] < cj[b]) {
          ++a;
        } else {
          ++b;
        }
      }
      acc += qij * s(i, j);
    }
  }
  return acc;
}

Matrix FactorizedPsd::to_dense() const {
  const Matrix qd = q_.to_dense();
  Matrix result = linalg::gemm(qd, qd.transposed());
  result.symmetrize();
  return result;
}

FactorizedSet::FactorizedSet(std::vector<FactorizedPsd> items)
    : items_(std::move(items)) {
  PSDP_CHECK(!items_.empty(), "factorized set must be non-empty");
  dim_ = items_[0].dim();
  for (const auto& item : items_) {
    PSDP_CHECK(item.dim() == dim_, "factorized set: inconsistent dimensions");
    total_nnz_ += item.nnz();
  }
}

const FactorizedPsd& FactorizedSet::operator[](Index i) const {
  PSDP_CHECK(i >= 0 && i < size(), "factorized set: index out of range");
  return items_[static_cast<std::size_t>(i)];
}

Csr FactorizedSet::weighted_sum(const Vector& x) const {
  PSDP_CHECK(x.size() == size(), "weighted_sum: weight length mismatch");
  std::vector<Triplet> triplets;
  for (Index idx = 0; idx < size(); ++idx) {
    const Real w = x[idx];
    if (w == 0) continue;
    const Csr& q = items_[static_cast<std::size_t>(idx)].q();
    // Contribute w * Q Q^T entry-wise: for each pair of entries in the same
    // factor column. To stay near-linear we expand by factor column: column c
    // of Q contributes w * q_c q_c^T restricted to its nonzeros.
    // Gather columns once.
    std::vector<std::vector<std::pair<Index, Real>>> by_col(
        static_cast<std::size_t>(q.cols()));
    for (Index r = 0; r < q.rows(); ++r) {
      const auto cols = q.row_cols(r);
      const auto vals = q.row_vals(r);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        by_col[static_cast<std::size_t>(cols[k])].push_back({r, vals[k]});
      }
    }
    for (const auto& col : by_col) {
      for (const auto& [r1, v1] : col) {
        for (const auto& [r2, v2] : col) {
          triplets.push_back({r1, r2, w * v1 * v2});
        }
      }
    }
  }
  if (triplets.empty()) {
    return Csr::from_triplets(dim_, dim_, {});
  }
  return Csr::from_triplets(dim_, dim_, std::move(triplets));
}

void FactorizedSet::weighted_apply_block(const Vector& x, const Matrix& v,
                                         Matrix& y,
                                         BlockWorkspace& workspace) const {
  PSDP_CHECK(x.size() == size(), "weighted_apply_block: weight length mismatch");
  PSDP_CHECK(v.rows() == dim_, "weighted_apply_block: panel dimension mismatch");
  const Index b = v.cols();
  y.reshape(dim_, b);
  y.fill(0);
  for (Index i = 0; i < size(); ++i) {
    if (x[i] == 0) continue;
    items_[static_cast<std::size_t>(i)].apply_block(
        v, workspace.contribution, workspace.scratch,
        workspace.transpose_partial, workspace.plan);
    y.add_scaled(workspace.contribution, x[i]);
  }
}

void FactorizedSet::ensure_float_values(BlockWorkspace& workspace) const {
  if (static_cast<Index>(workspace.float_values.size()) < size()) {
    workspace.float_values.resize(static_cast<std::size_t>(size()));
  }
  for (Index i = 0; i < size(); ++i) {
    auto& fv = workspace.float_values[static_cast<std::size_t>(i)];
    if (!fv.built) {
      items_[static_cast<std::size_t>(i)].q().fill_float_values(fv.values,
                                                                fv.t_values);
      fv.built = true;
    }
  }
}

void FactorizedSet::weighted_apply_block_f(const Vector& x, const MatrixF& v,
                                           MatrixF& y,
                                           BlockWorkspace& workspace) const {
  PSDP_CHECK(x.size() == size(),
             "weighted_apply_block_f: weight length mismatch");
  PSDP_CHECK(v.rows() == dim_,
             "weighted_apply_block_f: panel dimension mismatch");
  ensure_float_values(workspace);
  const Index b = v.cols();
  y.reshape(dim_, b);
  y.fill(0);
  for (Index i = 0; i < size(); ++i) {
    if (x[i] == 0) continue;
    const auto& fv = workspace.float_values[static_cast<std::size_t>(i)];
    items_[static_cast<std::size_t>(i)].apply_block_f(
        v, workspace.contribution_f, workspace.scratch_f, fv.values,
        fv.t_values, workspace.transpose_partial_f);
    // Weights stay double until the very last multiply: one rounding per
    // accumulated term, same as the float kernels themselves.
    const float w = static_cast<float>(x[i]);
    float* yd = y.data();
    const float* cd = workspace.contribution_f.data();
    for (Index e = 0; e < dim_ * b; ++e) yd[e] += w * cd[e];
  }
}

void FactorizedSet::weighted_apply(const Vector& x, const Vector& v,
                                   Vector& y) const {
  PSDP_CHECK(x.size() == size(), "weighted_apply: weight length mismatch");
  PSDP_CHECK(v.size() == dim_, "weighted_apply: vector length mismatch");
  if (y.size() != dim_) y = Vector(dim_);
  y.fill(0);
  Vector contribution(dim_);
  for (Index i = 0; i < size(); ++i) {
    if (x[i] == 0) continue;
    items_[static_cast<std::size_t>(i)].apply(v, contribution);
    y.add_scaled(contribution, x[i]);
  }
}

}  // namespace psdp::sparse
