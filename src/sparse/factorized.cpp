#include "sparse/factorized.hpp"

#include <cmath>

#include "linalg/matfunc.hpp"
#include "par/parallel.hpp"

namespace psdp::sparse {

FactorizedPsd::FactorizedPsd(Csr q) : q_(std::move(q)) {
  PSDP_CHECK(q_.rows() >= 1, "factorized PSD: Q must have at least one row");
}

FactorizedPsd FactorizedPsd::rank_one(const Vector& v, Real drop_tol) {
  std::vector<Triplet> triplets;
  for (Index i = 0; i < v.size(); ++i) {
    if (std::abs(v[i]) > drop_tol) triplets.push_back({i, 0, v[i]});
  }
  return FactorizedPsd(Csr::from_triplets(v.size(), 1, std::move(triplets)));
}

FactorizedPsd FactorizedPsd::from_dense_psd(const Matrix& a, Real tol) {
  const linalg::EigResult eig = linalg::jacobi_eig(a);
  const Real lmax = std::max(eig.eigenvalues[0], Real{0});
  const Real cutoff = tol * std::max(lmax, Real{1});
  PSDP_CHECK(eig.eigenvalues[eig.eigenvalues.size() - 1] >= -cutoff,
             "from_dense_psd: matrix is not PSD");
  std::vector<Triplet> triplets;
  Index k = 0;
  for (Index c = 0; c < eig.eigenvalues.size(); ++c) {
    if (eig.eigenvalues[c] <= cutoff) continue;
    const Real s = std::sqrt(eig.eigenvalues[c]);
    for (Index r = 0; r < a.rows(); ++r) {
      const Real v = s * eig.eigenvectors(r, c);
      if (v != 0) triplets.push_back({r, k, v});
    }
    ++k;
  }
  if (k == 0) k = 1;  // zero matrix: keep a valid empty m x 1 factor
  return FactorizedPsd(Csr::from_triplets(a.rows(), k, std::move(triplets)));
}

void FactorizedPsd::apply(const Vector& x, Vector& y) const {
  Vector scratch(q_.cols());
  q_.apply_transpose(x, scratch);
  q_.apply(scratch, y);
}

void FactorizedPsd::apply_block(const Matrix& x, Matrix& y,
                                Matrix& scratch) const {
  q_.apply_transpose_block(x, scratch);
  q_.apply_block(scratch, y);
}

Real FactorizedPsd::dot_dense(const Matrix& s) const {
  PSDP_CHECK(s.rows() == dim() && s.cols() == dim(),
             "dot_dense: dimension mismatch");
  // (Q Q^T) . S = sum_c q_c^T S q_c over columns q_c of Q. Work it row-wise:
  // sum_{i,j} S_ij (Q Q^T)_ij done as sum_i <row_i(Q), t_i> where
  // t = S Q columnwise is O(m^2 k); for sparse Q iterate entries directly.
  Real acc = 0;
  for (Index i = 0; i < q_.rows(); ++i) {
    const auto ci = q_.row_cols(i);
    const auto vi = q_.row_vals(i);
    if (ci.empty()) continue;
    for (Index j = 0; j < q_.rows(); ++j) {
      const auto cj = q_.row_cols(j);
      const auto vj = q_.row_vals(j);
      if (cj.empty()) continue;
      // (Q Q^T)_{ij} = <row_i, row_j> via sorted-merge.
      Real qij = 0;
      std::size_t a = 0, b = 0;
      while (a < ci.size() && b < cj.size()) {
        if (ci[a] == cj[b]) {
          qij += vi[a] * vj[b];
          ++a;
          ++b;
        } else if (ci[a] < cj[b]) {
          ++a;
        } else {
          ++b;
        }
      }
      acc += qij * s(i, j);
    }
  }
  return acc;
}

Matrix FactorizedPsd::to_dense() const {
  const Matrix qd = q_.to_dense();
  Matrix result = linalg::gemm(qd, qd.transposed());
  result.symmetrize();
  return result;
}

FactorizedSet::FactorizedSet(std::vector<FactorizedPsd> items)
    : items_(std::move(items)) {
  PSDP_CHECK(!items_.empty(), "factorized set must be non-empty");
  dim_ = items_[0].dim();
  for (const auto& item : items_) {
    PSDP_CHECK(item.dim() == dim_, "factorized set: inconsistent dimensions");
    total_nnz_ += item.nnz();
  }
}

const FactorizedPsd& FactorizedSet::operator[](Index i) const {
  PSDP_CHECK(i >= 0 && i < size(), "factorized set: index out of range");
  return items_[static_cast<std::size_t>(i)];
}

Csr FactorizedSet::weighted_sum(const Vector& x) const {
  PSDP_CHECK(x.size() == size(), "weighted_sum: weight length mismatch");
  std::vector<Triplet> triplets;
  for (Index idx = 0; idx < size(); ++idx) {
    const Real w = x[idx];
    if (w == 0) continue;
    const Csr& q = items_[static_cast<std::size_t>(idx)].q();
    // Contribute w * Q Q^T entry-wise: for each pair of entries in the same
    // factor column. To stay near-linear we expand by factor column: column c
    // of Q contributes w * q_c q_c^T restricted to its nonzeros.
    // Gather columns once.
    std::vector<std::vector<std::pair<Index, Real>>> by_col(
        static_cast<std::size_t>(q.cols()));
    for (Index r = 0; r < q.rows(); ++r) {
      const auto cols = q.row_cols(r);
      const auto vals = q.row_vals(r);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        by_col[static_cast<std::size_t>(cols[k])].push_back({r, vals[k]});
      }
    }
    for (const auto& col : by_col) {
      for (const auto& [r1, v1] : col) {
        for (const auto& [r2, v2] : col) {
          triplets.push_back({r1, r2, w * v1 * v2});
        }
      }
    }
  }
  if (triplets.empty()) {
    return Csr::from_triplets(dim_, dim_, {});
  }
  return Csr::from_triplets(dim_, dim_, std::move(triplets));
}

void FactorizedSet::weighted_apply_block(const Vector& x, const Matrix& v,
                                         Matrix& y,
                                         BlockWorkspace& workspace) const {
  PSDP_CHECK(x.size() == size(), "weighted_apply_block: weight length mismatch");
  PSDP_CHECK(v.rows() == dim_, "weighted_apply_block: panel dimension mismatch");
  const Index b = v.cols();
  if (y.rows() != dim_ || y.cols() != b) y = Matrix(dim_, b);
  y.fill(0);
  for (Index i = 0; i < size(); ++i) {
    if (x[i] == 0) continue;
    items_[static_cast<std::size_t>(i)].apply_block(v, workspace.contribution,
                                                    workspace.scratch);
    y.add_scaled(workspace.contribution, x[i]);
  }
}

void FactorizedSet::weighted_apply(const Vector& x, const Vector& v,
                                   Vector& y) const {
  PSDP_CHECK(x.size() == size(), "weighted_apply: weight length mismatch");
  PSDP_CHECK(v.size() == dim_, "weighted_apply: vector length mismatch");
  if (y.size() != dim_) y = Vector(dim_);
  y.fill(0);
  Vector contribution(dim_);
  for (Index i = 0; i < size(); ++i) {
    if (x[i] == 0) continue;
    items_[static_cast<std::size_t>(i)].apply(v, contribution);
    y.add_scaled(contribution, x[i]);
  }
}

}  // namespace psdp::sparse
