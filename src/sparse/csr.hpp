// Compressed sparse row (CSR) matrices with parallel matvec.
//
// The factorized input format of Theorem 4.1 stores each A_i = Q_i Q_i^T
// with Q_i sparse; everything bigDotExp does is SpMV with Q_i, Q_i^T and
// the (sparse) running sum Psi. Costs are charged to the CostMeter so the
// nearly-linear-work claim (Corollary 1.2) can be measured in the model.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "util/common.hpp"

namespace psdp::sparse {

using linalg::Matrix;
using linalg::Vector;

/// Triplet used by the COO builder.
struct Triplet {
  Index row = 0;
  Index col = 0;
  Real value = 0;
};

class Csr {
 public:
  Csr() = default;

  /// Build from triplets; duplicates are summed, explicit zeros dropped.
  static Csr from_triplets(Index rows, Index cols,
                           std::vector<Triplet> triplets);

  /// Dense -> sparse conversion, dropping entries with |v| <= drop_tol.
  static Csr from_dense(const Matrix& dense, Real drop_tol = 0);

  /// n x n identity.
  static Csr identity(Index n);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index nnz() const { return static_cast<Index>(values_.size()); }

  std::span<const Index> row_offsets() const { return offsets_; }
  std::span<const Index> col_indices() const { return columns_; }
  std::span<const Real> values() const { return values_; }

  /// Entries of row i as (column, value) spans.
  std::span<const Index> row_cols(Index i) const;
  std::span<const Real> row_vals(Index i) const;

  /// y = A x (parallel over rows).
  void apply(const Vector& x, Vector& y) const;
  Vector apply(const Vector& x) const;

  /// y = A^T x (parallel over output blocks).
  void apply_transpose(const Vector& x, Vector& y) const;
  Vector apply_transpose(const Vector& x) const;

  /// Y = A X for a row-major cols() x b panel X (SpMM): the matrix is
  /// streamed once for the whole panel, parallel over row chunks, and the
  /// inner loop is a contiguous length-b dense update. Column t of Y is
  /// bit-identical to apply() on column t of X (same accumulation order).
  void apply_block(const Matrix& x, Matrix& y) const;

  /// Y = A^T X for a row-major rows() x b panel: parallel over row chunks
  /// with per-chunk cols() x b accumulators combined in chunk order
  /// (deterministic for a fixed thread count; stays parallel even for the
  /// narrow factor panels where column ownership would serialize).
  void apply_transpose_block(const Matrix& x, Matrix& y) const;

  /// Scale all values in place.
  Csr& scale(Real s);

  /// Dense copy.
  Matrix to_dense() const;

  /// Frobenius norm squared.
  Real frobenius_norm2() const;

  /// Sum of diagonal entries (square matrices).
  Real trace() const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Index> offsets_;  ///< rows_+1 entries
  std::vector<Index> columns_;
  std::vector<Real> values_;
};

/// C = A + s * B for same-shaped CSR matrices (structural union).
Csr add_scaled(const Csr& a, const Csr& b, Real s);

}  // namespace psdp::sparse
