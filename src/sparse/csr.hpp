// Compressed sparse row (CSR) matrices with parallel matvec.
//
// The factorized input format of Theorem 4.1 stores each A_i = Q_i Q_i^T
// with Q_i sparse; everything bigDotExp does is SpMV with Q_i, Q_i^T and
// the (sparse) running sum Psi. Costs are charged to the CostMeter so the
// nearly-linear-work claim (Corollary 1.2) can be measured in the model.
//
// Transpose kernels: `Q^T x` has three panel kernels -- the per-output-row
// CSC gather, the segmented-column gather (the same reduction swept one
// cache-sized row window at a time), and the owned-column scatter. Which
// one runs is decided by a KernelPlan (sparse/kernel_plan.hpp), measured
// on the actual matrix at build_transpose_index() time; the gather and the
// segmented gather are bitwise identical to each other at every thread
// count, so the plan's choice never changes results. See
// docs/ARCHITECTURE.md ("The sparse layer") and docs/TUNING.md.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/matrixf.hpp"
#include "linalg/vector.hpp"
#include "sparse/kernel_plan.hpp"
#include "util/common.hpp"

namespace psdp::sparse {

using linalg::Matrix;
using linalg::MatrixF;
using linalg::Vector;

/// Triplet used by the COO builder.
struct Triplet {
  Index row = 0;    ///< row index
  Index col = 0;    ///< column index
  Real value = 0;   ///< entry value (duplicates are summed)
};

/// A sparse rows() x cols() matrix in CSR layout, with optional cached
/// transpose (CSC) and segment indexes driving the plan-dispatched
/// transpose kernels.
class Csr {
 public:
  Csr() = default;

  /// Build from triplets; duplicates are summed, explicit zeros dropped.
  static Csr from_triplets(Index rows, Index cols,
                           std::vector<Triplet> triplets);

  /// Adopt already-assembled CSR arrays verbatim: `offsets` has rows+1
  /// non-decreasing entries starting at 0 and ending at columns.size(),
  /// column indices are strictly ascending within each row and in range,
  /// values are finite and parallel to the columns. No sorting, merging or
  /// copying beyond the moves -- this is the zero-rearrangement entry point
  /// of the chunked binary loader and the streaming MatrixMarket reader,
  /// which assemble canonical CSR themselves and must not pay (or
  /// re-randomize) a triplet round-trip. Throws InvalidArgument naming the
  /// first malformed datum.
  static Csr from_parts(Index rows, Index cols, std::vector<Index> offsets,
                        std::vector<Index> columns, std::vector<Real> values);

  /// Dense -> sparse conversion, dropping entries with |v| <= drop_tol.
  static Csr from_dense(const Matrix& dense, Real drop_tol = 0);

  /// n x n identity.
  static Csr identity(Index n);

  /// Number of rows.
  Index rows() const { return rows_; }
  /// Number of columns.
  Index cols() const { return cols_; }
  /// Number of stored nonzeros.
  Index nnz() const { return static_cast<Index>(values_.size()); }

  /// Row-offset array (rows()+1 entries).
  std::span<const Index> row_offsets() const { return offsets_; }
  /// Column index of each stored entry, row-major.
  std::span<const Index> col_indices() const { return columns_; }
  /// Value of each stored entry, row-major.
  std::span<const Real> values() const { return values_; }

  /// Column indices of row i.
  std::span<const Index> row_cols(Index i) const;
  /// Values of row i (parallel to row_cols(i)).
  std::span<const Real> row_vals(Index i) const;

  /// y = A x (parallel over rows).
  void apply(const Vector& x, Vector& y) const;
  /// y = A x, allocating the result.
  Vector apply(const Vector& x) const;

  /// Build (idempotently) the cached transpose index: a CSC view of the
  /// matrix (column offsets, row indices and values in column-major order,
  /// rows ascending within each column). With the index present the
  /// transpose kernels switch from the owned-column scatter to per-output
  /// -row *gathers*: each output row of A^T x is one contiguous sweep over
  /// its column's entries with the accumulator in registers -- one pass
  /// over the nonzeros, no per-chunk partial buffers, and bitwise
  /// deterministic across thread counts (each output is reduced serially
  /// in row order). Costs one extra copy of the nonzeros; FactorizedPsd
  /// builds it automatically for tall factors, where the gather wins (see
  /// README "The kernel layer").
  ///
  /// Alongside the CSC view this builds (when `options` permit) the
  /// *segment grid* -- per-column offsets of each options.segment_rows-row
  /// window, enabling the segmented gather -- and the KernelPlan: the
  /// autotuner measures the kernels on this matrix (memoized per shape
  /// bucket) or, when disabled, the measurement-free heuristic. The plan
  /// is built here, at setup time, precisely so the steady-state solver
  /// iterations above stay allocation-free and measurement-free.
  void build_transpose_index(const TransposePlanOptions& options);
  /// build_transpose_index with default TransposePlanOptions.
  void build_transpose_index();
  /// True once build_transpose_index() has run.
  bool has_transpose_index() const { return t_built_; }
  /// True when the segment grid (and with it the segmented gather) exists.
  bool has_segment_index() const { return t_segment_rows_ > 0; }
  /// Base row granularity of the segment grid (0 = no grid).
  Index segment_rows() const { return t_segment_rows_; }

  /// The transpose-kernel plan built by build_transpose_index() (empty
  /// before that; an empty plan dispatches to the gather).
  const KernelPlan& kernel_plan() const { return plan_; }
  /// Replace the plan -- deserialized from a bench run, forced for an A/B
  /// experiment, or hand-tuned. Forcing kScatter is honored but gives up
  /// the across-thread-count bitwise guarantee (see KernelPlan).
  void set_kernel_plan(KernelPlan plan) { plan_ = std::move(plan); }

  /// y = A^T x: the transpose-index gather when built (deterministic for
  /// any thread count), the owned-column sweep otherwise (deterministic for
  /// a fixed thread count; both accumulate per output in row order, so the
  /// two paths agree bitwise).
  void apply_transpose(const Vector& x, Vector& y) const;
  /// y = A^T x, allocating the result.
  Vector apply_transpose(const Vector& x) const;

  /// Y = A X for a row-major cols() x b panel X (SpMM): the matrix is
  /// streamed once for the whole panel, parallel over row chunks, and the
  /// inner loop is a contiguous length-b dense update. Column t of Y is
  /// bit-identical to apply() on column t of X (same accumulation order).
  void apply_block(const Matrix& x, Matrix& y) const;

  /// Y = A^T X for a row-major rows() x b panel: dispatched through the
  /// KernelPlan (kernel_plan(), or `plan` when non-null, non-empty, and
  /// not stale -- a plan tuned under another ISA or kernel-set revision
  /// says nothing about this binary's kernels and is ignored).
  /// Plans built by the autotuner only select the gather or the segmented
  /// gather, which are bitwise identical to each other at every thread
  /// count -- so the dispatch can never change results. Without a
  /// transpose index the owned-column scatter is the only kernel and runs
  /// regardless of the plan. The overload taking `partial` recycles the
  /// scatter path's per-chunk accumulators across calls, keeping the hot
  /// path allocation-free for every kernel choice.
  void apply_transpose_block(const Matrix& x, Matrix& y) const;
  /// apply_transpose_block recycling the scatter path's `partial` buffer.
  void apply_transpose_block(const Matrix& x, Matrix& y,
                             std::vector<Real>& partial) const;
  /// apply_transpose_block under a caller-provided plan (nullptr or empty
  /// = this matrix's own kernel_plan()).
  void apply_transpose_block(const Matrix& x, Matrix& y,
                             std::vector<Real>& partial,
                             const KernelPlan* plan) const;

  /// The owned-column scatter, always available: parallel over row chunks
  /// with per-chunk cols() x b accumulators (resized into `partial`,
  /// capacity-preserving) combined in chunk order -- deterministic for a
  /// fixed thread count; stays parallel even for the narrow factor panels
  /// where column ownership would serialize.
  void apply_transpose_block_owned(const Matrix& x, Matrix& y,
                                   std::vector<Real>& partial) const;

  /// The transpose-index gather (requires build_transpose_index()): each
  /// output row j of Y accumulates column j's entries in ascending row
  /// order -- the same order as a single-chunk owned-column sweep, so the
  /// two paths agree bitwise; unlike the scatter it needs no partial
  /// buffers and its result is independent of the thread count.
  void apply_transpose_block_indexed(const Matrix& x, Matrix& y) const;

  /// The segmented-column gather (requires the segment grid): the same
  /// per-output ascending-row reduction as apply_transpose_block_indexed,
  /// but swept one row *window* at a time -- a whole multiple of
  /// segment_rows() sized by TransposePlanOptions::window_bytes so the
  /// window's slice of the input panel (window rows x b doubles) stays
  /// cache-resident and shared across all threads, with upcoming entry
  /// rows software-prefetched -- which is what the plain gather lacks at
  /// wide panels (its strided fetches through the full rows() x b panel
  /// defeat the prefetcher). Because each output is still reduced
  /// serially in ascending row order, the result is bitwise identical to
  /// the plain gather for every window size and thread count; when one
  /// window covers the whole matrix this delegates to the plain gather
  /// outright.
  void apply_transpose_block_segmented(const Matrix& x, Matrix& y) const;

  /// Fill float32 copies of the stored values (and of the cached CSC
  /// values when the transpose index exists; `t_values_f` is left empty
  /// otherwise). The float panel kernels below take these as parameters
  /// instead of caching them here, so Csr stays cheaply copyable
  /// (FactorizedPsd::scaled) and owners control the scratch lifetime --
  /// FactorizedSet::BlockWorkspace builds the copies once at warmup.
  void fill_float_values(std::vector<float>& values_f,
                         std::vector<float>& t_values_f) const;

  /// Float32 twin of apply_block over a cols() x b MatrixF panel, using the
  /// caller's float value copy (from fill_float_values). Mixed-precision
  /// sketch mode only (see BigDotExpOptions::panel_precision); results are
  /// deterministic per ISA but carry float rounding.
  void apply_block_f(const MatrixF& x, MatrixF& y,
                     std::span<const float> values_f) const;

  /// Float32 twin of apply_transpose_block: the CSC gather when the
  /// transpose index exists (t_values_f), the owned-column scatter over
  /// `partial` chunks otherwise (values_f). No segmented/plan dispatch --
  /// the float path only runs on factor panels, where the plain gather is
  /// the right kernel.
  void apply_transpose_block_f(const MatrixF& x, MatrixF& y,
                               std::span<const float> values_f,
                               std::span<const float> t_values_f,
                               std::vector<float>& partial) const;

  /// Scale all values in place (keeps the cached CSC values in sync).
  Csr& scale(Real s);

  /// Dense copy.
  Matrix to_dense() const;

  /// Frobenius norm squared.
  Real frobenius_norm2() const;

  /// Sum of diagonal entries (square matrices).
  Real trace() const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Index> offsets_;  ///< rows_+1 entries
  std::vector<Index> columns_;
  std::vector<Real> values_;

  /// Cached CSC view (build_transpose_index); kept in sync by scale().
  bool t_built_ = false;
  std::vector<Index> t_offsets_;  ///< cols_+1 entries
  std::vector<Index> t_rows_;     ///< row of each entry, ascending per column
  std::vector<Real> t_values_;    ///< values in column-major order

  /// Segment grid over the CSC view: t_seg_starts_[s * cols_ + j] is the
  /// offset of column j's first entry with row >= s * t_segment_rows_
  /// ((num_segments + 1) x cols_ entries, so consecutive grid rows bound
  /// each column's per-window spans -- and spans of adjacent windows
  /// concatenate, which is how one grid serves every panel width).
  Index t_segment_rows_ = 0;  ///< 0 = no grid
  Index t_window_bytes_ = 0;  ///< segmented-gather window target (see build)
  std::vector<Index> t_seg_starts_;

  /// Transpose-kernel decision table (see build_transpose_index).
  KernelPlan plan_;
};

/// C = A + s * B for same-shaped CSR matrices (structural union).
Csr add_scaled(const Csr& a, const Csr& b, Real s);

/// Process-wide count of transpose-index builds actually performed
/// (idempotent re-calls do not count). The serve layer's cache-reuse
/// assertions -- "zero index rebuilds after warmup" -- difference this
/// counter around a warm batch (bench_serve, tests/test_serve.cpp).
std::uint64_t transpose_index_build_count();

}  // namespace psdp::sparse
