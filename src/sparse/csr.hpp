// Compressed sparse row (CSR) matrices with parallel matvec.
//
// The factorized input format of Theorem 4.1 stores each A_i = Q_i Q_i^T
// with Q_i sparse; everything bigDotExp does is SpMV with Q_i, Q_i^T and
// the (sparse) running sum Psi. Costs are charged to the CostMeter so the
// nearly-linear-work claim (Corollary 1.2) can be measured in the model.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "util/common.hpp"

namespace psdp::sparse {

using linalg::Matrix;
using linalg::Vector;

/// Triplet used by the COO builder.
struct Triplet {
  Index row = 0;
  Index col = 0;
  Real value = 0;
};

class Csr {
 public:
  Csr() = default;

  /// Build from triplets; duplicates are summed, explicit zeros dropped.
  static Csr from_triplets(Index rows, Index cols,
                           std::vector<Triplet> triplets);

  /// Dense -> sparse conversion, dropping entries with |v| <= drop_tol.
  static Csr from_dense(const Matrix& dense, Real drop_tol = 0);

  /// n x n identity.
  static Csr identity(Index n);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index nnz() const { return static_cast<Index>(values_.size()); }

  std::span<const Index> row_offsets() const { return offsets_; }
  std::span<const Index> col_indices() const { return columns_; }
  std::span<const Real> values() const { return values_; }

  /// Entries of row i as (column, value) spans.
  std::span<const Index> row_cols(Index i) const;
  std::span<const Real> row_vals(Index i) const;

  /// y = A x (parallel over rows).
  void apply(const Vector& x, Vector& y) const;
  Vector apply(const Vector& x) const;

  /// Build (idempotently) the cached transpose index: a CSC view of the
  /// matrix (column offsets, row indices and values in column-major order,
  /// rows ascending within each column). With the index present the
  /// transpose kernels switch from the owned-column scatter to a per-output
  /// -row *gather*: each output row of A^T x is one contiguous sweep over
  /// its column's entries with the accumulator in registers -- one pass
  /// over the nonzeros, no per-chunk partial buffers, and bitwise
  /// deterministic across thread counts (each output is reduced serially
  /// in row order). Costs one extra copy of the nonzeros; FactorizedPsd
  /// builds it automatically for tall factors, where the gather wins (see
  /// README "The kernel layer").
  void build_transpose_index();
  bool has_transpose_index() const { return t_built_; }

  /// y = A^T x: the transpose-index gather when built (deterministic for
  /// any thread count), the owned-column sweep otherwise (deterministic for
  /// a fixed thread count; both accumulate per output in row order, so the
  /// two paths agree bitwise).
  void apply_transpose(const Vector& x, Vector& y) const;
  Vector apply_transpose(const Vector& x) const;

  /// Y = A X for a row-major cols() x b panel X (SpMM): the matrix is
  /// streamed once for the whole panel, parallel over row chunks, and the
  /// inner loop is a contiguous length-b dense update. Column t of Y is
  /// bit-identical to apply() on column t of X (same accumulation order).
  void apply_block(const Matrix& x, Matrix& y) const;

  /// Widest panel the transpose-index gather is dispatched for: at narrow
  /// widths the gather's register-resident output row and single pass win
  /// (4.4x at b = 1, 1.7x at b = 4 on the tall-factor bench); at wide
  /// panels the scatter's *sequential* streaming of the rows() x b input
  /// panel beats the gather's strided jumps through it (the gather fetches
  /// b doubles at each of the column's scattered rows, defeating the
  /// hardware prefetcher), so wide panels keep the owned-column sweep.
  static constexpr Index kGatherMaxWidth = 8;

  /// Y = A^T X for a row-major rows() x b panel. Dispatches to the
  /// transpose-index gather when the index is built and b <=
  /// kGatherMaxWidth (bitwise deterministic across thread counts), else to
  /// the owned-column scatter (deterministic for a fixed thread count).
  /// The overload taking `partial` recycles the scatter path's per-chunk
  /// accumulators across calls, keeping the hot path allocation-free
  /// either way.
  void apply_transpose_block(const Matrix& x, Matrix& y) const;
  void apply_transpose_block(const Matrix& x, Matrix& y,
                             std::vector<Real>& partial) const;

  /// The owned-column scatter, always available: parallel over row chunks
  /// with per-chunk cols() x b accumulators (resized into `partial`,
  /// capacity-preserving) combined in chunk order -- deterministic for a
  /// fixed thread count; stays parallel even for the narrow factor panels
  /// where column ownership would serialize.
  void apply_transpose_block_owned(const Matrix& x, Matrix& y,
                                   std::vector<Real>& partial) const;

  /// The transpose-index gather (requires build_transpose_index()): each
  /// output row j of Y accumulates column j's entries in ascending row
  /// order -- the same order as a single-chunk owned-column sweep, so the
  /// two paths agree bitwise; unlike the scatter it needs no partial
  /// buffers and its result is independent of the thread count.
  void apply_transpose_block_indexed(const Matrix& x, Matrix& y) const;

  /// Scale all values in place.
  Csr& scale(Real s);

  /// Dense copy.
  Matrix to_dense() const;

  /// Frobenius norm squared.
  Real frobenius_norm2() const;

  /// Sum of diagonal entries (square matrices).
  Real trace() const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Index> offsets_;  ///< rows_+1 entries
  std::vector<Index> columns_;
  std::vector<Real> values_;

  /// Cached CSC view (build_transpose_index); kept in sync by scale().
  bool t_built_ = false;
  std::vector<Index> t_offsets_;  ///< cols_+1 entries
  std::vector<Index> t_rows_;     ///< row of each entry, ascending per column
  std::vector<Real> t_values_;    ///< values in column-major order
};

/// C = A + s * B for same-shaped CSR matrices (structural union).
Csr add_scaled(const Csr& a, const Csr& b, Real s);

}  // namespace psdp::sparse
