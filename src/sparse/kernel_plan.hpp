// Runtime kernel selection for the CSR transpose panels: the KernelPlan.
//
// PR 3 dispatched Csr::apply_transpose_block between the per-output-row
// gather and the owned-column scatter at a compile-time width crossover
// (Csr::kGatherMaxWidth = 8) tuned on one machine. This module retires that
// constant: a KernelPlan records, per panel-width bucket, which transpose
// kernel to run, and an autotuner measures the three kernels on the *actual
// matrix* at build_transpose_index() time (decisions are cached per
// (nnz, rows, cols) shape bucket so same-shaped factors tune once).
//
// The load-bearing invariant: the gather and the segmented gather reduce
// every output row in ascending row order, so they are *bitwise identical*
// to each other for any segment window and any thread count. The autotuner
// therefore only ever chooses between those two (the scatter is timed and
// reported but never auto-selected), which means timing noise in the plan
// can never change a single bit of the solver trajectories above it --
// kernel choice is a pure performance decision. A caller may still force
// the scatter through a hand-built or deserialized plan; that choice is
// deterministic for a fixed thread count only (per-chunk partials combined
// in chunk order), exactly as documented on Csr::apply_transpose_block_owned.
//
// Plans serialize to JSON (KernelPlan::to_json / from_json) so bench_kernels
// can emit the tuned plan into BENCH_kernels.json and reload it on a later
// run (see docs/TUNING.md for the schema).
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "simd/simd.hpp"
#include "util/common.hpp"
#include "util/tunables.hpp"

namespace psdp::sparse {

class Csr;  // kernel_plan.cpp measures on a Csr; the header needs no layout
class TransposePlanCache;  // defined below AutotuneOptions

/// The three transpose-panel kernels a plan can select between.
enum class TransposeKernel {
  /// Per-output-row CSC gather: one serial ascending-row reduction per
  /// output, register-resident accumulator. Bitwise identical across
  /// thread counts.
  kGather,
  /// Segmented-column gather: the same ascending-row reduction per output,
  /// but swept one cache-sized row window at a time so the input panel
  /// slice stays resident at wide widths. Bitwise identical to kGather.
  kSegmented,
  /// Owned-column scatter over row chunks with per-chunk partial
  /// accumulators. Deterministic for a fixed thread count only; the only
  /// kernel available without a transpose index.
  kScatter,
};

/// Stable lower-case name of a kernel ("gather", "segmented", "scatter"),
/// used by the JSON serialization and the bench tables.
const char* kernel_name(TransposeKernel kernel);

/// One width bucket of a KernelPlan: the decision for panel widths up to
/// (and including) `width`, plus the measured per-apply seconds behind it
/// (0 = not measured; heuristic plans carry no timings).
struct KernelPlanEntry {
  Index width = 0;                                    ///< bucket upper edge
  TransposeKernel choice = TransposeKernel::kGather;  ///< kernel to run
  double gather_seconds = 0;     ///< measured gather time (0 = unmeasured)
  double segmented_seconds = 0;  ///< measured segmented time (0 = unmeasured
                                 ///< or no segment grid)
  double scatter_seconds = 0;    ///< measured scatter time (0 = unmeasured)
  /// Gather time under the forced-scalar backend, measured only when
  /// AutotuneOptions::measure_scalar is set (0 = unmeasured). Reported so
  /// the bench sweeps can attribute speedups to the SIMD backends; never
  /// part of the choice (the scalar backend is never faster, and choices
  /// must not depend on which ISA happened to be active).
  double scalar_gather_seconds = 0;
};

bool operator==(const KernelPlanEntry& a, const KernelPlanEntry& b);

/// A per-matrix transpose-kernel decision table, bucketed by panel width.
///
/// choose(b) walks the entries (kept sorted by width) and returns the first
/// bucket covering b; widths beyond the last bucket reuse the last entry,
/// and an empty plan falls back to the gather (always deterministic, always
/// available once the transpose index is built). Plans are value types:
/// Csr carries one, callers may override it per application (see
/// Csr::apply_transpose_block and BigDotExpOptions::kernel_plan).
class KernelPlan {
 public:
  /// Revision of the transpose-kernel set plans are tuned against. Bumped
  /// whenever the kernels' performance profile changes shape (revision 2 =
  /// the simd dispatch-seam kernels of the SIMD layer; 1 = the scalar
  /// kernels of PR 3/4, which serialized neither isa nor version).
  /// Deserialized plans carrying another revision are stale: their timings
  /// describe kernels this binary does not run.
  static constexpr int kKernelSetVersion = 2;

  KernelPlan() = default;

  /// The measurement-free fallback: gather up to width 8, then the
  /// segmented gather when a segment grid exists (else still the gather --
  /// matrices too small for a grid have cache-resident panels anyway).
  /// The width-8 crossover is the old Csr::kGatherMaxWidth constant,
  /// demoted from a hard dispatch to a tuning prior.
  static KernelPlan heuristic(bool segmented_available);

  /// A single-bucket plan forcing `kernel` at every width (tests, benches,
  /// and A/B experiments).
  static KernelPlan forced(TransposeKernel kernel);

  /// The kernel to run for a width-b panel (see class comment for the
  /// bucket walk; empty plans return kGather).
  TransposeKernel choose(Index width) const;

  /// Insert or replace the bucket with this width (entries stay sorted).
  void set_entry(KernelPlanEntry entry);

  /// True when any entry carries a nonzero measurement (i.e. the plan came
  /// from the autotuner or a serialized autotuner run, not the heuristic).
  bool measured() const;

  /// The decision table, sorted by bucket width.
  const std::vector<KernelPlanEntry>& entries() const { return entries_; }

  /// The ISA the plan's timings were measured under (heuristic(), forced()
  /// and the autotuner stamp the active ISA at build time; deserialized
  /// plans without the field report kScalar).
  simd::Isa isa() const { return isa_; }
  /// The kernel-set revision the plan was tuned for (0 = a plan from
  /// before revisions were serialized -- always stale).
  int kernel_set_version() const { return kernel_set_version_; }
  /// Stamp provenance (from_json and tests; plan builders stamp
  /// automatically).
  void set_provenance(simd::Isa isa, int kernel_set_version) {
    isa_ = isa;
    kernel_set_version_ = kernel_set_version;
  }

  /// True when this plan's timings do not describe the kernels the process
  /// would actually run: tuned for another kernel-set revision or under
  /// another ISA than the currently active one. Stale plans are re-tuned
  /// (bench_kernels --plan-in) or ignored in favor of the matrix's own
  /// plan (Csr::apply_transpose_block) rather than silently dispatched.
  bool stale() const {
    return kernel_set_version_ != kKernelSetVersion ||
           isa_ != simd::active_isa();
  }

  /// Serialize to a JSON object: {"entries": [{"width": .., "kernel":
  /// "gather", "gather_seconds": .., "segmented_seconds": ..,
  /// "scatter_seconds": .., "scalar_gather_seconds": ..}, ..],
  /// "isa": "avx2", "kernel_set_version": 2}. Timings round-trip exactly
  /// (printed with max_digits10 precision).
  std::string to_json() const;

  /// Parse a plan serialized by to_json(); throws InvalidArgument on
  /// malformed input or unknown kernel names. Tolerant of surrounding JSON
  /// (scans for the "entries" array; "isa" and "kernel_set_version" are
  /// read from the same object, and their absence -- a pre-revision plan
  /// -- deserializes as kScalar/0, which stale() reports as stale), so it
  /// accepts both a standalone plan file and the "kernel_plan" section of
  /// BENCH_kernels.json.
  static KernelPlan from_json(const std::string& text);

  friend bool operator==(const KernelPlan& a, const KernelPlan& b) {
    return a.entries_ == b.entries_ && a.isa_ == b.isa_ &&
           a.kernel_set_version_ == b.kernel_set_version_;
  }

 private:
  std::vector<KernelPlanEntry> entries_;  ///< sorted by width
  /// Provenance: the ISA and kernel-set revision the timings describe.
  simd::Isa isa_ = simd::Isa::kScalar;
  int kernel_set_version_ = 0;
};

/// Knobs of the transpose-kernel autotuner.
struct AutotuneOptions {
  /// Measure at all; false = heuristic plans only (tests that want fixed
  /// decisions, or hot construction paths that cannot afford timing).
  bool enable = true;
  /// Panel widths to measure, one plan bucket each. Empty = {1, 2, 4, 8,
  /// 16, 32}.
  std::vector<Index> widths;
  /// Timing repetitions per kernel; the best rep is kept.
  int reps = 2;
  /// Untimed warmup runs before the timed repetitions of each kernel
  /// (linalg::TimingOptions::warmup): absorbs first-touch faults of the
  /// fresh panels and primes the dispatch seam's branch targets.
  int warmup = 1;
  /// Wall-clock floor per kernel measurement (TimingOptions::
  /// min_elapsed_seconds); 0 = reps alone decide. Raised by bench_kernels
  /// so plan decisions are stable on noisy machines.
  double min_sample_seconds = 0;
  /// Also time the gather under a forced-scalar dispatch (simd::ScopedIsa)
  /// and record it in KernelPlanEntry::scalar_gather_seconds. Off by
  /// default -- it doubles the gather's timing cost and informs reporting
  /// only, never the choice. No-op when the active ISA already is scalar
  /// (the plain gather timing is the scalar timing).
  bool measure_scalar = false;
  /// Matrices whose largest measured apply is below this many flops skip
  /// measurement entirely and take the heuristic plan: tiny factors are
  /// cache-resident whichever kernel runs, and solvers construct thousands
  /// of them.
  Index min_bench_flops = 1 << 16;
  /// Let the autotuner select the scatter when it wins a bucket. Off by
  /// default: the scatter is deterministic only for a fixed thread count,
  /// so auto-selecting it would let timing noise perturb solver
  /// trajectories (see the header comment). Timings are recorded either
  /// way.
  bool allow_scatter_choice = false;
  /// The plan memo cached_transpose_plan() consults: nullptr = the
  /// process-wide cache (global_transpose_plan_cache()). The serve layer's
  /// ArtifactCache owns its own TransposePlanCache and threads it through
  /// here, so batch workloads keep their plan decisions in an owned,
  /// independently capped cache instead of the process-wide one. Not part
  /// of the memo key (it *is* the memo).
  TransposePlanCache* plan_cache = nullptr;
};

/// A capped, evictable, thread-safe memo of autotuned transpose plans,
/// keyed by the matrix's (log2 nnz, log2 rows, log2 cols, has-segment-grid)
/// shape bucket plus a fingerprint of the tuner options: same-shaped
/// factors -- a FactorizedSet holds hundreds -- measure once and share the
/// decision.
///
/// This class replaces the process-wide unbounded `static std::map` memo of
/// PR 4 with a value an owner can hold, size, inspect, and clear: the
/// process-wide default lives behind global_transpose_plan_cache() (now
/// capped), and the serve layer's ArtifactCache owns a private instance
/// (AutotuneOptions::plan_cache). Eviction is least-recently-used; hit,
/// miss, and eviction counts are exposed for the cache-reuse assertions of
/// bench_serve and the tests.
class TransposePlanCache {
 public:
  /// Entry cap of the process-wide cache. Generous: one entry per distinct
  /// (shape bucket, tuner-option) pair, and solvers funnel through a
  /// handful of option sets.
  static constexpr std::size_t kDefaultCapacity = 256;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;      ///< lookups that ran the autotuner
    std::uint64_t evictions = 0;   ///< entries displaced by the cap
  };

  explicit TransposePlanCache(std::size_t capacity = kDefaultCapacity);

  /// The memoized autotune_transpose_plan: returns the cached plan for the
  /// matrix's shape bucket, measuring (outside the lock) on a miss. A
  /// racing duplicate measurement is harmless -- last writer wins and every
  /// candidate decision is bit-equivalent (gather vs segmented). Ignores
  /// options.plan_cache (this cache is already the memo).
  KernelPlan get(const Csr& a, const AutotuneOptions& options);

  /// Drop every memoized decision (counts as neither hit nor eviction).
  void clear();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  Stats stats() const;

 private:
  /// Shape bucket + options fingerprint + active ISA (see kernel_plan.cpp;
  /// the ISA is part of the key so a plan tuned under one dispatch target
  /// is a miss -- re-tuned, not reused -- under another).
  using Key = std::array<std::int64_t, 6>;

  struct Slot {
    Key key;
    KernelPlan plan;
    std::uint64_t last_used = 0;  ///< LRU tick
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::uint64_t tick_ = 0;
  std::vector<Slot> slots_;  ///< unordered; capacity is small, scans are fine
  Stats stats_;
};

/// The process-wide plan memo consulted when AutotuneOptions::plan_cache is
/// null -- the PR 4 global memo, now capped and evictable.
TransposePlanCache& global_transpose_plan_cache();

/// Options of Csr::build_transpose_index(): the segment grid plus the
/// autotuner configuration.
struct TransposePlanOptions {
  /// Base row granularity of the segment grid; the apply-time window is a
  /// whole multiple of this. 0 disables the grid (and with it the
  /// segmented kernel). Matrices with rows <= segment_rows skip the grid:
  /// a single segment is exactly the plain gather. Defaulted from the
  /// tunable registry (`segment_rows`, default 1024).
  Index segment_rows = util::tunable_segment_rows();
  /// Skip the grid when its offset table would exceed this multiple of the
  /// nonzero count -- wide matrices (many columns, few segments' worth of
  /// rows each) would pay more index than data. Tall factors sail under
  /// the default; tests raise it to force grids on tiny shapes.
  Real max_segment_index_ratio = 1.0;
  /// Bytes of input panel one segmented-gather window targets at apply
  /// time (window rows ~ window_bytes / (8 b), rounded to whole segments).
  /// A pure locality knob -- every window size produces identical bits --
  /// sized by default for the shared cache level, since all threads sweep
  /// the same window. When a single window covers the whole matrix the
  /// segmented kernel delegates to the plain gather (same bits, none of
  /// the windowing overhead); tests shrink this to force multi-window
  /// sweeps on tiny matrices. Defaulted from the tunable registry
  /// (`window_bytes`, default 1 MiB).
  Index window_bytes = util::tunable_window_bytes();
  /// Autotuner knobs; autotune.enable = false leaves the heuristic plan.
  AutotuneOptions autotune;
};

/// Measure the transpose kernels on `a` (which must have its transpose
/// index built) and return the resulting plan. Deterministic synthetic
/// panels; each bucket's choice is the fastest *deterministic* kernel
/// unless options.allow_scatter_choice is set. Matrices under
/// options.min_bench_flops return the heuristic plan unmeasured.
KernelPlan autotune_transpose_plan(const Csr& a,
                                   const AutotuneOptions& options = {});

/// autotune_transpose_plan through a plan memo: options.plan_cache when
/// set, the process-wide global_transpose_plan_cache() otherwise.
/// Same-shaped factors -- a FactorizedSet holds hundreds -- measure once
/// and share the decision. Thread-safe.
KernelPlan cached_transpose_plan(const Csr& a,
                                 const AutotuneOptions& options = {});

/// Drop all decisions memoized in the *process-wide* cache (tests; benches
/// that re-tune). Owned TransposePlanCache instances clear themselves.
void clear_transpose_plan_cache();

}  // namespace psdp::sparse
