// Constraint-sharded factorized sets: the partition layer of the
// out-of-core instance pipeline.
//
// A ShardedFactorizedSet is a FactorizedSet plus a contiguous partition of
// its constraint indices into K shards -- shard k owns the global range
// [shard_begin(k), shard_end(k)), balanced by nnz so the per-shard dots
// sweeps of bigDotExp (Theorem 4.1's ||S Q_i||_F^2 loop, embarrassingly
// partitionable across constraints) carry comparable work. Each shard's
// factors own their transpose index, segment grid and KernelPlan exactly as
// before; the shard adds the slice boundaries that the per-shard sweeps,
// the per-shard workspace slices and the chunked on-disk format all key on.
//
// Determinism contract (locked by tests/test_sharded.cpp):
//  * K = 1 is the unsharded legacy path, bit-identical to a plain
//    FactorizedSet: same factors, same kernels, same reduction shapes.
//  * K > 1 is bitwise deterministic across thread counts for fixed K:
//    every factor gets the cached transpose index at shard construction
//    (the CSC gathers reduce each output serially in row order at any pool
//    width, unlike the owned-column scatter whose per-chunk combine is
//    shaped by num_threads()), and every cross-constraint reduction -- the
//    per-round dots/trace merge in bigDotExp, the oracle's tracked Tr[Psi]
//    and lambda bounds -- runs as per-shard partials merged serially in
//    shard order 0..K-1 (par::deterministic_sum for the panel traces).
//    K > 1 bits differ from K = 1 bits (different summation shapes); what
//    is guaranteed is that neither depends on the thread count.
#pragma once

#include <span>
#include <vector>

#include "sparse/factorized.hpp"

namespace psdp::sparse {

/// A FactorizedSet partitioned into K contiguous, nnz-balanced constraint
/// shards. Cheap to move; shard boundaries travel with copies and scales.
class ShardedFactorizedSet {
 public:
  ShardedFactorizedSet() = default;

  /// Single-shard (legacy) wrap: no repartition, no index forcing -- the
  /// set is taken verbatim, so K = 1 stays bit-identical to the
  /// pre-sharding path.
  explicit ShardedFactorizedSet(FactorizedSet set);

  /// Partition `set` into `shard_count` contiguous shards balanced by nnz
  /// (clamped to [1, size()]). With shard_count > 1 every factor gets its
  /// transpose index built under `plan_options` (idempotent for factors
  /// that already have one) -- the determinism contract above requires the
  /// gather kernels on every factor, not just the tall ones.
  ShardedFactorizedSet(FactorizedSet set, Index shard_count,
                       const TransposePlanOptions& plan_options = {});

  /// Adopt pre-cut shard boundaries (the chunked loader's shard table):
  /// `offsets` has shard_count+1 non-decreasing entries from 0 to
  /// set.size() with every shard non-empty. Index forcing as above when
  /// more than one shard.
  ShardedFactorizedSet(FactorizedSet set, std::vector<Index> offsets,
                       const TransposePlanOptions& plan_options = {});

  Index size() const { return set_.size(); }
  Index dim() const { return set_.dim(); }
  Index total_nnz() const { return set_.total_nnz(); }

  /// The underlying full constraint set (all existing consumers -- the
  /// oracle's Psi operators, weighted_sum, tests -- keep reading this).
  const FactorizedSet& set() const { return set_; }

  Index shard_count() const {
    return offsets_.empty() ? 0 : static_cast<Index>(offsets_.size()) - 1;
  }
  /// Global index of shard k's first constraint.
  Index shard_begin(Index k) const;
  /// One past shard k's last constraint.
  Index shard_end(Index k) const;
  /// Total factor nnz owned by shard k.
  Index shard_nnz(Index k) const;
  /// The K+1 shard boundary offsets (shard k = [offsets[k], offsets[k+1])).
  std::span<const Index> shard_offsets() const { return offsets_; }

  /// True when the K > 1 deterministic mode is engaged: per-shard sweeps,
  /// fixed-order merges, thread-count-independent trace reductions.
  bool deterministic() const { return shard_count() > 1; }

  const FactorizedPsd& operator[](Index i) const { return set_[i]; }

  /// Copy representing {s * A_i} with the shard boundaries carried along
  /// (FactorizedPsd::scaled keeps each factor's transpose index, so no
  /// index forcing re-runs).
  ShardedFactorizedSet scaled(Real s) const;

  /// The nnz-balanced contiguous partition the sharding constructor uses,
  /// as bare offsets (shard_count clamped to [1, set.size()]). Exposed so
  /// the chunked writer can lay out shard blocks without constructing a
  /// sharded set (which would force transpose indexes just to serialize).
  static std::vector<Index> partition_offsets(const FactorizedSet& set,
                                              Index shard_count);

 private:
  void force_transpose_indexes(const TransposePlanOptions& plan_options);

  FactorizedSet set_;
  std::vector<Index> offsets_;  ///< K+1 shard boundaries over [0, size()]
};

}  // namespace psdp::sparse

namespace psdp::core {
// The issue-facing spelling: instances live in core, their constraint
// storage in sparse; the sharded set is the bridge both layers name.
using sparse::ShardedFactorizedSet;
}  // namespace psdp::core
