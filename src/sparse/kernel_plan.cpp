#include "sparse/kernel_plan.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <sstream>

#include "linalg/blockop.hpp"
#include "linalg/matrix.hpp"
#include "sparse/csr.hpp"

namespace psdp::sparse {

namespace {

/// Widths measured when AutotuneOptions::widths is empty: the bench sweep's
/// grid, one plan bucket each.
const Index kDefaultWidths[] = {1, 2, 4, 8, 16, 32};

/// The heuristic gather/scatter crossover inherited from PR 3's
/// Csr::kGatherMaxWidth -- now only a prior for unmeasured plans.
constexpr Index kHeuristicGatherMaxWidth = 8;

/// Bucket edge of the heuristic's "everything wider" entry.
constexpr Index kWideBucket = Index{1} << 20;

/// Flops one timing sample should cover: below this the sample is jitter.
constexpr Index kTargetSampleFlops = Index{1} << 21;

}  // namespace

const char* kernel_name(TransposeKernel kernel) {
  switch (kernel) {
    case TransposeKernel::kGather:
      return "gather";
    case TransposeKernel::kSegmented:
      return "segmented";
    case TransposeKernel::kScatter:
      return "scatter";
  }
  return "unknown";
}

namespace {

TransposeKernel kernel_from_name(const std::string& name) {
  if (name == "gather") return TransposeKernel::kGather;
  if (name == "segmented") return TransposeKernel::kSegmented;
  if (name == "scatter") return TransposeKernel::kScatter;
  PSDP_CHECK(false, str("kernel plan: unknown kernel name '", name, "'"));
  return TransposeKernel::kGather;  // unreachable
}

}  // namespace

bool operator==(const KernelPlanEntry& a, const KernelPlanEntry& b) {
  return a.width == b.width && a.choice == b.choice &&
         a.gather_seconds == b.gather_seconds &&
         a.segmented_seconds == b.segmented_seconds &&
         a.scatter_seconds == b.scatter_seconds &&
         a.scalar_gather_seconds == b.scalar_gather_seconds;
}

KernelPlan KernelPlan::heuristic(bool segmented_available) {
  KernelPlan plan;
  plan.set_entry({kHeuristicGatherMaxWidth, TransposeKernel::kGather, 0, 0, 0});
  if (segmented_available) {
    plan.set_entry({kWideBucket, TransposeKernel::kSegmented, 0, 0, 0});
  }
  plan.set_provenance(simd::active_isa(), kKernelSetVersion);
  return plan;
}

KernelPlan KernelPlan::forced(TransposeKernel kernel) {
  KernelPlan plan;
  plan.set_entry({1, kernel, 0, 0, 0});
  plan.set_provenance(simd::active_isa(), kKernelSetVersion);
  return plan;
}

TransposeKernel KernelPlan::choose(Index width) const {
  if (entries_.empty()) return TransposeKernel::kGather;
  for (const KernelPlanEntry& entry : entries_) {
    if (width <= entry.width) return entry.choice;
  }
  return entries_.back().choice;  // wider than every bucket: reuse the last
}

void KernelPlan::set_entry(KernelPlanEntry entry) {
  PSDP_CHECK(entry.width >= 1, "kernel plan: bucket width must be positive");
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), entry.width,
      [](const KernelPlanEntry& e, Index w) { return e.width < w; });
  if (pos != entries_.end() && pos->width == entry.width) {
    *pos = entry;
  } else {
    entries_.insert(pos, entry);
  }
}

bool KernelPlan::measured() const {
  for (const KernelPlanEntry& entry : entries_) {
    if (entry.gather_seconds > 0 || entry.segmented_seconds > 0 ||
        entry.scatter_seconds > 0) {
      return true;
    }
  }
  return false;
}

std::string KernelPlan::to_json() const {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "{\"entries\": [";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const KernelPlanEntry& e = entries_[i];
    out << (i > 0 ? ", " : "") << "{\"width\": " << e.width
        << ", \"kernel\": \"" << kernel_name(e.choice)
        << "\", \"gather_seconds\": " << e.gather_seconds
        << ", \"segmented_seconds\": " << e.segmented_seconds
        << ", \"scatter_seconds\": " << e.scatter_seconds
        << ", \"scalar_gather_seconds\": " << e.scalar_gather_seconds << "}";
  }
  // Provenance after the entries array: from_json bounds its search to the
  // span between the array and the enclosing '}', so these keys can never
  // collide with identically named keys elsewhere in a surrounding document
  // (the bench JSON header also carries an "isa").
  out << "], \"isa\": \"" << simd::isa_name(isa_)
      << "\", \"kernel_set_version\": " << kernel_set_version_ << "}";
  return out.str();
}

namespace {

/// Position just past `key` (a quoted JSON key) and its ':' within
/// text[from, limit); npos when absent.
std::size_t find_key(const std::string& text, const char* key,
                     std::size_t from, std::size_t limit) {
  const std::string quoted = str("\"", key, "\"");
  const std::size_t at = text.find(quoted, from);
  if (at == std::string::npos || at >= limit) return std::string::npos;
  const std::size_t colon = text.find(':', at + quoted.size());
  if (colon == std::string::npos || colon >= limit) return std::string::npos;
  return colon + 1;
}

double parse_number(const std::string& text, std::size_t at,
                    const char* what) {
  const char* begin = text.c_str() + at;
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  PSDP_CHECK(end != begin, str("kernel plan: malformed ", what, " value"));
  return value;
}

std::string parse_string(const std::string& text, std::size_t at,
                         const char* what) {
  const std::size_t open = text.find('"', at);
  PSDP_CHECK(open != std::string::npos,
             str("kernel plan: malformed ", what, " value"));
  const std::size_t close = text.find('"', open + 1);
  PSDP_CHECK(close != std::string::npos,
             str("kernel plan: malformed ", what, " value"));
  return text.substr(open + 1, close - open - 1);
}

}  // namespace

KernelPlan KernelPlan::from_json(const std::string& text) {
  const std::size_t entries_at =
      find_key(text, "entries", 0, std::string::npos);
  PSDP_CHECK(entries_at != std::string::npos,
             "kernel plan: no \"entries\" array in input");
  const std::size_t array_open = text.find('[', entries_at);
  PSDP_CHECK(array_open != std::string::npos,
             "kernel plan: \"entries\" is not an array");
  const std::size_t array_close = text.find(']', array_open);
  PSDP_CHECK(array_close != std::string::npos,
             "kernel plan: unterminated \"entries\" array");

  KernelPlan plan;
  std::size_t cursor = array_open + 1;
  while (true) {
    const std::size_t open = text.find('{', cursor);
    if (open == std::string::npos || open > array_close) break;
    const std::size_t close = text.find('}', open);
    PSDP_CHECK(close != std::string::npos && close < array_close,
               "kernel plan: unterminated entry object");
    KernelPlanEntry entry;
    const std::size_t width_at = find_key(text, "width", open, close);
    PSDP_CHECK(width_at != std::string::npos,
               "kernel plan: entry without \"width\"");
    entry.width = static_cast<Index>(parse_number(text, width_at, "width"));
    const std::size_t kernel_at = find_key(text, "kernel", open, close);
    PSDP_CHECK(kernel_at != std::string::npos,
               "kernel plan: entry without \"kernel\"");
    entry.choice = kernel_from_name(parse_string(text, kernel_at, "kernel"));
    const auto seconds = [&](const char* key) -> double {
      const std::size_t at = find_key(text, key, open, close);
      return at == std::string::npos ? 0 : parse_number(text, at, key);
    };
    entry.gather_seconds = seconds("gather_seconds");
    entry.segmented_seconds = seconds("segmented_seconds");
    entry.scatter_seconds = seconds("scatter_seconds");
    entry.scalar_gather_seconds = seconds("scalar_gather_seconds");
    plan.set_entry(entry);
    cursor = close + 1;
  }
  PSDP_CHECK(!plan.entries().empty(), "kernel plan: empty \"entries\" array");
  // Provenance keys sit between the entries array and the '}' closing the
  // plan object (to_json emits them there); bounding the search to that
  // span keeps a surrounding document's own "isa" key (the bench JSON
  // header has one) from being misread as the plan's. Absent keys -- a
  // pre-revision plan -- leave the kScalar/0 default, which stale()
  // reports as stale.
  const std::size_t object_close = text.find('}', array_close);
  const std::size_t limit =
      object_close == std::string::npos ? text.size() : object_close;
  simd::Isa isa = simd::Isa::kScalar;
  int version = 0;
  const std::size_t isa_at = find_key(text, "isa", array_close, limit);
  if (isa_at != std::string::npos) {
    const std::string name = parse_string(text, isa_at, "isa");
    PSDP_CHECK(simd::isa_from_name(name, isa),
               str("kernel plan: unknown isa '", name, "'"));
  }
  const std::size_t version_at =
      find_key(text, "kernel_set_version", array_close, limit);
  if (version_at != std::string::npos) {
    version = static_cast<int>(
        parse_number(text, version_at, "kernel_set_version"));
  }
  plan.set_provenance(isa, version);
  return plan;
}

// -------------------------------------------------------------- autotuner --

namespace {

/// Deterministic panel fill for the timing runs (values are irrelevant to
/// timing; a fixed pattern keeps the measurement allocation-free of RNG
/// state and reproducible).
void fill_bench_panel(linalg::Matrix& x, Index rows, Index width) {
  x.reshape(rows, width);
  Real v = 0.5;
  for (Index i = 0; i < rows * width; ++i) {
    x.data()[i] = v;
    v = v > 4 ? 0.25 : v * 1.0625;
  }
}

}  // namespace

KernelPlan autotune_transpose_plan(const Csr& a,
                                   const AutotuneOptions& options) {
  PSDP_CHECK(a.has_transpose_index(),
             "autotune_transpose_plan: call build_transpose_index() first");
  const bool segmented = a.has_segment_index();
  std::vector<Index> widths(options.widths);
  if (widths.empty()) {
    widths.assign(std::begin(kDefaultWidths), std::end(kDefaultWidths));
  }
  const Index max_width = *std::max_element(widths.begin(), widths.end());
  if (!options.enable || 2 * a.nnz() * max_width < options.min_bench_flops) {
    return KernelPlan::heuristic(segmented);
  }

  KernelPlan plan;
  const linalg::TimingOptions timing{options.reps, options.warmup,
                                     options.min_sample_seconds};
  linalg::Matrix x, y;
  std::vector<Real> partial;
  for (const Index width : widths) {
    PSDP_CHECK(width >= 1, "autotune_transpose_plan: widths must be positive");
    fill_bench_panel(x, a.rows(), width);
    const Index flops = std::max<Index>(1, 2 * a.nnz() * width);
    const int inner = static_cast<int>(
        std::clamp<Index>(kTargetSampleFlops / flops, 1, 64));
    KernelPlanEntry entry;
    entry.width = width;
    entry.gather_seconds =
        linalg::time_block_kernel(timing, [&] {
          for (int it = 0; it < inner; ++it) {
            a.apply_transpose_block_indexed(x, y);
          }
        }) /
        inner;
    if (segmented) {
      entry.segmented_seconds =
          linalg::time_block_kernel(timing, [&] {
            for (int it = 0; it < inner; ++it) {
              a.apply_transpose_block_segmented(x, y);
            }
          }) /
          inner;
    }
    entry.scatter_seconds =
        linalg::time_block_kernel(timing, [&] {
          for (int it = 0; it < inner; ++it) {
            a.apply_transpose_block_owned(x, y, partial);
          }
        }) /
        inner;
    if (options.measure_scalar &&
        simd::active_isa() != simd::Isa::kScalar) {
      // Reporting only (bench attribution of the SIMD speedup); forced
      // scalar for the duration of this one timing, then restored.
      simd::ScopedIsa forced_scalar(simd::Isa::kScalar);
      entry.scalar_gather_seconds =
          linalg::time_block_kernel(timing, [&] {
            for (int it = 0; it < inner; ++it) {
              a.apply_transpose_block_indexed(x, y);
            }
          }) /
          inner;
    }
    // The deterministic pair first; the scatter only on explicit opt-in
    // (it is deterministic for a fixed thread count only, so letting the
    // tuner pick it would let timing noise change solver bits).
    entry.choice = TransposeKernel::kGather;
    double best = entry.gather_seconds;
    if (segmented && entry.segmented_seconds < best) {
      entry.choice = TransposeKernel::kSegmented;
      best = entry.segmented_seconds;
    }
    if (options.allow_scatter_choice && entry.scatter_seconds < best) {
      entry.choice = TransposeKernel::kScatter;
    }
    plan.set_entry(entry);
  }
  plan.set_provenance(simd::active_isa(), KernelPlan::kKernelSetVersion);
  return plan;
}

namespace {

/// Bucket of the plan memo: matrices agreeing in ceil(log2) of nnz, rows
/// and cols (and in segment-grid availability) share a decision -- but
/// only for identical tuner options, which the key fingerprints: two
/// callers differing in widths, reps, the flop gate, or the scatter
/// opt-in must never silently share a plan (the opt-in in particular
/// decides whether a cached plan can ever pick the thread-count-dependent
/// scatter). The active ISA is the sixth element: a plan's timings (and
/// stale() verdict) are per dispatch target, so a ScopedIsa change turns
/// lookups into misses instead of serving mismatched plans. The plan_cache
/// pointer is deliberately excluded: it names *which* memo to consult, not
/// what to memoize.
using PlanCacheKey = std::array<std::int64_t, 6>;

int log2_bucket(Index v) { return std::bit_width(static_cast<std::uint64_t>(std::max<Index>(v, 1))); }

std::int64_t options_fingerprint(const AutotuneOptions& options) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over the knobs
  const auto mix = [&h](std::uint64_t v) {
    h = (h ^ v) * 1099511628211ull;
  };
  mix(options.enable ? 1 : 0);
  mix(options.allow_scatter_choice ? 2 : 0);
  mix(options.measure_scalar ? 4 : 0);
  mix(static_cast<std::uint64_t>(options.reps));
  mix(static_cast<std::uint64_t>(options.warmup));
  mix(std::bit_cast<std::uint64_t>(options.min_sample_seconds));
  mix(static_cast<std::uint64_t>(options.min_bench_flops));
  for (const Index w : options.widths) mix(static_cast<std::uint64_t>(w));
  return static_cast<std::int64_t>(h);
}

PlanCacheKey plan_cache_key(const Csr& a, const AutotuneOptions& options) {
  return {log2_bucket(a.nnz()), log2_bucket(a.rows()), log2_bucket(a.cols()),
          a.has_segment_index() ? 1 : 0, options_fingerprint(options),
          static_cast<std::int64_t>(simd::active_isa())};
}

}  // namespace

TransposePlanCache::TransposePlanCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  slots_.reserve(capacity_);
}

KernelPlan TransposePlanCache::get(const Csr& a,
                                   const AutotuneOptions& options) {
  const PlanCacheKey key = plan_cache_key(a, options);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (Slot& slot : slots_) {
      if (slot.key == key) {
        ++stats_.hits;
        slot.last_used = ++tick_;
        return slot.plan;
      }
    }
    ++stats_.misses;
  }
  // Measure outside the lock (the measurement runs parallel kernels); a
  // racing duplicate measurement is harmless -- last writer wins and every
  // candidate decision is bit-equivalent (gather vs segmented).
  KernelPlan plan = autotune_transpose_plan(a, options);
  std::lock_guard<std::mutex> lock(mutex_);
  for (Slot& slot : slots_) {
    if (slot.key == key) {  // a racing thread inserted first: adopt ours
      slot.plan = plan;
      slot.last_used = ++tick_;
      return plan;
    }
  }
  if (slots_.size() >= capacity_) {
    // Evict the least-recently-used slot (capacity is small; a scan is
    // cheaper than maintaining an intrusive list).
    std::size_t victim = 0;
    for (std::size_t i = 1; i < slots_.size(); ++i) {
      if (slots_[i].last_used < slots_[victim].last_used) victim = i;
    }
    slots_[victim] = Slot{key, plan, ++tick_};
    ++stats_.evictions;
  } else {
    slots_.push_back(Slot{key, plan, ++tick_});
  }
  return plan;
}

void TransposePlanCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_.clear();
}

std::size_t TransposePlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

TransposePlanCache::Stats TransposePlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

TransposePlanCache& global_transpose_plan_cache() {
  // Sized from the tunable registry (`plan_cache_capacity`, default
  // kDefaultCapacity) at first use; an override must land before the first
  // plan lookup (env var, or CLI flags parsed before any solve).
  static TransposePlanCache cache(
      static_cast<std::size_t>(util::tunable_plan_cache_capacity()));
  return cache;
}

KernelPlan cached_transpose_plan(const Csr& a, const AutotuneOptions& options) {
  TransposePlanCache& cache =
      options.plan_cache ? *options.plan_cache : global_transpose_plan_cache();
  return cache.get(a, options);
}

void clear_transpose_plan_cache() { global_transpose_plan_cache().clear(); }

}  // namespace psdp::sparse
