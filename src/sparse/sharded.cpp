#include "sparse/sharded.hpp"

#include <algorithm>
#include <utility>

namespace psdp::sparse {

ShardedFactorizedSet::ShardedFactorizedSet(FactorizedSet set)
    : set_(std::move(set)) {
  offsets_ = {0, set_.size()};
}

ShardedFactorizedSet::ShardedFactorizedSet(
    FactorizedSet set, Index shard_count,
    const TransposePlanOptions& plan_options)
    : set_(std::move(set)) {
  offsets_ = partition_offsets(set_, shard_count);
  // Bit-identical legacy path when a single shard results: no index
  // forcing, the set is taken verbatim.
  if (this->shard_count() > 1) force_transpose_indexes(plan_options);
}

std::vector<Index> ShardedFactorizedSet::partition_offsets(
    const FactorizedSet& set, Index shard_count) {
  PSDP_CHECK(shard_count >= 1, "sharded set: shard count must be positive");
  const Index n = set.size();
  const Index k_shards = std::min(shard_count, n);
  if (k_shards <= 1) return {0, n};
  // nnz-balanced contiguous cuts: shard k ends at the first constraint
  // whose nnz prefix reaches (k+1)/K of the total, nudged forward so every
  // shard keeps at least one constraint. Deterministic in the instance
  // alone -- the cut must not depend on thread count or load order, since
  // the K>1 reduction order (and hence the bits) follows the boundaries.
  std::vector<Index> offsets(static_cast<std::size_t>(k_shards) + 1, 0);
  const Index total = std::max<Index>(1, set.total_nnz());
  Index begin = 0;   // first constraint of the current shard
  Index prefix = 0;  // nnz of constraints [0, begin)
  for (Index k = 0; k < k_shards; ++k) {
    offsets[static_cast<std::size_t>(k)] = begin;
    if (k == k_shards - 1) break;  // last shard takes the tail
    // Cut at the first index whose nnz prefix reaches (k+1)/K of the
    // total, keeping at least one constraint here and one per shard after.
    const Index target = (total * (k + 1) + k_shards - 1) / k_shards;
    const Index max_end = n - (k_shards - k - 1);
    prefix += set[begin].nnz();
    Index end = begin + 1;
    while (end < max_end && prefix < target) {
      prefix += set[end].nnz();
      ++end;
    }
    begin = end;
  }
  offsets[static_cast<std::size_t>(k_shards)] = n;
  return offsets;
}

ShardedFactorizedSet::ShardedFactorizedSet(
    FactorizedSet set, std::vector<Index> offsets,
    const TransposePlanOptions& plan_options)
    : set_(std::move(set)), offsets_(std::move(offsets)) {
  PSDP_CHECK(offsets_.size() >= 2, "sharded set: offsets need >= 2 entries");
  PSDP_CHECK(offsets_.front() == 0, "sharded set: offsets must start at 0");
  PSDP_CHECK(offsets_.back() == set_.size(),
             str("sharded set: offsets end at ", offsets_.back(),
                 ", expected ", set_.size()));
  for (std::size_t k = 0; k + 1 < offsets_.size(); ++k) {
    PSDP_CHECK(offsets_[k] < offsets_[k + 1],
               str("sharded set: shard ", k, " is empty"));
  }
  if (shard_count() > 1) force_transpose_indexes(plan_options);
}

Index ShardedFactorizedSet::shard_begin(Index k) const {
  PSDP_CHECK(k >= 0 && k < shard_count(),
             "sharded set: shard index out of range");
  return offsets_[static_cast<std::size_t>(k)];
}

Index ShardedFactorizedSet::shard_end(Index k) const {
  PSDP_CHECK(k >= 0 && k < shard_count(),
             "sharded set: shard index out of range");
  return offsets_[static_cast<std::size_t>(k) + 1];
}

Index ShardedFactorizedSet::shard_nnz(Index k) const {
  Index nnz = 0;
  for (Index i = shard_begin(k); i < shard_end(k); ++i) nnz += set_[i].nnz();
  return nnz;
}

ShardedFactorizedSet ShardedFactorizedSet::scaled(Real s) const {
  std::vector<FactorizedPsd> items;
  items.reserve(set_.items().size());
  for (const auto& item : set_.items()) items.push_back(item.scaled(s));
  ShardedFactorizedSet out;
  out.set_ = FactorizedSet(std::move(items));
  out.offsets_ = offsets_;  // scaled() keeps indexes: no re-forcing needed
  return out;
}

void ShardedFactorizedSet::force_transpose_indexes(
    const TransposePlanOptions& plan_options) {
  // K>1 determinism leg: every factor runs the CSC gather kernels, whose
  // per-output serial reductions are independent of the pool width. The
  // short/wide factors the aspect gate skipped get their index here;
  // build_transpose_index is idempotent for the tall ones.
  for (FactorizedPsd& item : set_.items()) {
    item.ensure_transpose_index(plan_options);
  }
}

}  // namespace psdp::sparse
