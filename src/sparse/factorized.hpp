// Factorized PSD matrices: A = Q Q^T with Q sparse (m x k).
//
// This is the "prefactored" input format of Theorem 4.1 / Corollary 1.2.
// Everything the width-independent solver needs from A_i is available
// without ever forming the m x m product:
//   trace(A)      = ||Q||_F^2
//   A x           = Q (Q^T x)
//   exp(Phi) . A  = ||exp(Phi/2) Q||_F^2    (the bigDotExp identity)
#pragma once

#include <vector>

#include "sparse/csr.hpp"

namespace psdp::sparse {

/// One PSD matrix in factorized form.
class FactorizedPsd {
 public:
  FactorizedPsd() = default;

  /// Takes Q (m x k). The represented matrix is Q Q^T, of dimension m.
  explicit FactorizedPsd(Csr q);

  /// Rank-1 special case A = v v^T (beamforming channels, graph edges).
  static FactorizedPsd rank_one(const Vector& v, Real drop_tol = 0);

  /// Factor a dense PSD matrix via its eigendecomposition:
  /// Q = V diag(sqrt(lambda)) restricted to the numerical rank.
  static FactorizedPsd from_dense_psd(const Matrix& a, Real tol = 1e-10);

  const Csr& q() const { return q_; }
  Index dim() const { return q_.rows(); }
  Index factor_cols() const { return q_.cols(); }
  Index nnz() const { return q_.nnz(); }

  /// trace(Q Q^T) = ||Q||_F^2.
  Real trace() const { return q_.frobenius_norm2(); }

  /// y = (Q Q^T) x via two SpMVs. Thread-safe (no shared scratch).
  void apply(const Vector& x, Vector& y) const;

  /// Y = (Q Q^T) X for a row-major dim() x b panel, via two SpMMs through
  /// the caller-provided k x b scratch panel (resized as needed).
  void apply_block(const Matrix& x, Matrix& y, Matrix& scratch) const;

  /// (Q Q^T) . S for a dense symmetric S: sum of column quadratic forms.
  Real dot_dense(const Matrix& s) const;

  /// Dense copy Q Q^T.
  Matrix to_dense() const;

 private:
  Csr q_;
};

/// The constraint set {A_i = Q_i Q_i^T}, plus totals used in the cost bounds
/// (q = total nnz across factors).
class FactorizedSet {
 public:
  FactorizedSet() = default;
  explicit FactorizedSet(std::vector<FactorizedPsd> items);

  Index size() const { return static_cast<Index>(items_.size()); }
  Index dim() const { return dim_; }
  Index total_nnz() const { return total_nnz_; }

  const FactorizedPsd& operator[](Index i) const;

  std::vector<FactorizedPsd>& items() { return items_; }
  const std::vector<FactorizedPsd>& items() const { return items_; }

  /// Psi = sum_i x_i A_i as a sparse CSR matrix (union of factor supports).
  /// Entries with weight zero are skipped.
  Csr weighted_sum(const Vector& x) const;

  /// y = (sum_i x_i A_i) v without forming the sum.
  void weighted_apply(const Vector& x, const Vector& v, Vector& y) const;

  /// Y = (sum_i x_i A_i) V for a row-major dim() x b panel V, streaming
  /// each factor once per panel (two SpMMs per constraint). Column t is
  /// bit-identical to weighted_apply on column t. The workspace panels are
  /// resized on first use and reusable across calls.
  struct BlockWorkspace {
    Matrix contribution;  ///< dim x b accumulator for one constraint
    Matrix scratch;       ///< k_i x b intermediate Q_i^T V
  };
  void weighted_apply_block(const Vector& x, const Matrix& v, Matrix& y,
                            BlockWorkspace& workspace) const;

 private:
  std::vector<FactorizedPsd> items_;
  Index dim_ = 0;
  Index total_nnz_ = 0;
};

}  // namespace psdp::sparse
