// Factorized PSD matrices: A = Q Q^T with Q sparse (m x k).
//
// This is the "prefactored" input format of Theorem 4.1 / Corollary 1.2.
// Everything the width-independent solver needs from A_i is available
// without ever forming the m x m product:
//   trace(A)      = ||Q||_F^2
//   A x           = Q (Q^T x)
//   exp(Phi) . A  = ||exp(Phi/2) Q||_F^2    (the bigDotExp identity)
#pragma once

#include <vector>

#include "sparse/csr.hpp"

namespace psdp::sparse {

/// Aspect ratio rows/cols at which a factor counts as "tall" and gets the
/// cached transpose index at construction: the per-output-row CSC gather
/// then replaces the owned-column scatter in every Q^T application (see
/// Csr::build_transpose_index). Below this the extra copy of the nonzeros
/// buys little; the solvers' factors (m x k with k small) are far above it.
inline constexpr Index kTransposeIndexAspect = 4;

/// One PSD matrix in factorized form.
class FactorizedPsd {
 public:
  FactorizedPsd() = default;

  /// Takes Q (m x k). The represented matrix is Q Q^T, of dimension m.
  /// Tall factors (rows >= kTransposeIndexAspect * cols) get the cached
  /// transpose index built here, so their Q^T kernels run the gather path.
  explicit FactorizedPsd(Csr q);

  /// As above, but the transpose index (and with it the segment grid and
  /// the KernelPlan) is built under the caller's options -- in particular
  /// TransposePlanOptions::autotune.plan_cache, which is how the serve
  /// layer's ArtifactCache routes plan memoization of the instances it
  /// prepares into its own owned cache instead of the process-wide one.
  FactorizedPsd(Csr q, const TransposePlanOptions& plan_options);

  /// Rank-1 special case A = v v^T (beamforming channels, graph edges).
  static FactorizedPsd rank_one(const Vector& v, Real drop_tol = 0);

  /// Factor a dense PSD matrix via its eigendecomposition:
  /// Q = V diag(sqrt(lambda)) restricted to the numerical rank.
  static FactorizedPsd from_dense_psd(const Matrix& a, Real tol = 1e-10);

  const Csr& q() const { return q_; }

  /// Build (idempotently) the factor's transpose index regardless of the
  /// aspect gate. The sharded sets call this for every factor when K > 1:
  /// the CSC gather kernels are thread-count deterministic, the fallback
  /// owned-column scatter is not.
  void ensure_transpose_index(const TransposePlanOptions& plan_options) {
    q_.build_transpose_index(plan_options);
  }

  Index dim() const { return q_.rows(); }
  Index factor_cols() const { return q_.cols(); }
  Index nnz() const { return q_.nnz(); }

  /// trace(Q Q^T) = ||Q||_F^2.
  Real trace() const { return q_.frobenius_norm2(); }

  /// Cached upper bound on lambda_max(Q Q^T), computed once at
  /// construction: the exact top eigenvalue of the k x k Gram matrix for
  /// small factor ranks (inflated a hair so eigensolver rounding cannot
  /// under-report a spectral norm), the trace for large ones. Always
  /// <= trace(), so bounds summed over a weighted set can never be looser
  /// than the trace-only bound. scaled() rescales the cached value, so
  /// probe searches over scaled instances pay the eigensolve only once.
  Real lambda_max_bound() const { return lambda_bound_; }

  /// Copy representing s * Q Q^T (factor scaled by sqrt(s), s >= 0),
  /// carrying the cached transpose index and lambda_max bound along
  /// instead of recomputing them.
  FactorizedPsd scaled(Real s) const;

  /// y = (Q Q^T) x via two SpMVs. Thread-safe (no shared scratch).
  void apply(const Vector& x, Vector& y) const;

  /// Y = (Q Q^T) X for a row-major dim() x b panel, via two SpMMs through
  /// the caller-provided k x b scratch panel (resized as needed).
  void apply_block(const Matrix& x, Matrix& y, Matrix& scratch) const;

  /// As above, recycling `partial` for the owned-column scatter when the
  /// factor has no transpose index (no-op scratch on the gather path); with
  /// caller-owned buffers the whole application is allocation-free once
  /// warm.
  void apply_block(const Matrix& x, Matrix& y, Matrix& scratch,
                   std::vector<Real>& partial) const;

  /// As above under a caller-provided transpose KernelPlan (nullptr or
  /// empty = this factor's own plan, built with its transpose index).
  void apply_block(const Matrix& x, Matrix& y, Matrix& scratch,
                   std::vector<Real>& partial, const KernelPlan* plan) const;

  /// Float32 twin of apply_block for the mixed-precision sketch mode: two
  /// float SpMMs through the caller's scratch panel, using the caller's
  /// float32 value copies of Q (FactorizedSet::ensure_float_values builds
  /// and recycles them). Deterministic per ISA; float rounding only.
  void apply_block_f(const MatrixF& x, MatrixF& y, MatrixF& scratch,
                     std::span<const float> values_f,
                     std::span<const float> t_values_f,
                     std::vector<float>& partial) const;

  /// (Q Q^T) . S for a dense symmetric S: sum of column quadratic forms.
  Real dot_dense(const Matrix& s) const;

  /// Dense copy Q Q^T.
  Matrix to_dense() const;

 private:
  Csr q_;
  Real lambda_bound_ = 0;  ///< cached lambda_max(Q Q^T) upper bound
};

/// The constraint set {A_i = Q_i Q_i^T}, plus totals used in the cost bounds
/// (q = total nnz across factors).
class FactorizedSet {
 public:
  FactorizedSet() = default;
  explicit FactorizedSet(std::vector<FactorizedPsd> items);

  Index size() const { return static_cast<Index>(items_.size()); }
  Index dim() const { return dim_; }
  Index total_nnz() const { return total_nnz_; }

  const FactorizedPsd& operator[](Index i) const;

  std::vector<FactorizedPsd>& items() { return items_; }
  const std::vector<FactorizedPsd>& items() const { return items_; }

  /// Psi = sum_i x_i A_i as a sparse CSR matrix (union of factor supports).
  /// Entries with weight zero are skipped.
  Csr weighted_sum(const Vector& x) const;

  /// y = (sum_i x_i A_i) v without forming the sum.
  void weighted_apply(const Vector& x, const Vector& v, Vector& y) const;

  /// Y = (sum_i x_i A_i) V for a row-major dim() x b panel V, streaming
  /// each factor once per panel (two SpMMs per constraint). Column t is
  /// bit-identical to weighted_apply on column t. The workspace panels are
  /// resized on first use and reusable across calls.
  struct BlockWorkspace {
    Matrix contribution;  ///< dim x b accumulator for one constraint
    Matrix scratch;       ///< k_i x b intermediate Q_i^T V
    /// Per-chunk accumulators of the owned-column transpose scatter
    /// (unused by factors with a transpose index); recycled across calls.
    std::vector<Real> transpose_partial;
    /// Caller-provided transpose KernelPlan applied to every factor's Q^T
    /// panels (nullptr = each factor's own plan). big_dot_exp wires
    /// BigDotExpOptions::kernel_plan through here; holding a plan is a
    /// pointer copy, so the zero-allocation steady state is unaffected.
    const KernelPlan* plan = nullptr;

    /// Float twins of the panels above, used only by the mixed-precision
    /// sketch mode (BigDotExpOptions::panel_precision).
    MatrixF contribution_f;  ///< dim x b float accumulator
    MatrixF scratch_f;       ///< k_i x b float intermediate
    std::vector<float> transpose_partial_f;
    /// Per-factor float32 copies of Q_i's values (and cached CSC values),
    /// built once by ensure_float_values and reused across panels, rounds,
    /// and solves. Stale only if a factor is mutated after the build --
    /// instances are immutable for the duration of a solve, and the float
    /// kernels cross-check sizes against nnz.
    struct FloatFactorValues {
      std::vector<float> values;
      std::vector<float> t_values;  ///< empty when no transpose index
      bool built = false;
    };
    std::vector<FloatFactorValues> float_values;
  };
  void weighted_apply_block(const Vector& x, const Matrix& v, Matrix& y,
                            BlockWorkspace& workspace) const;

  /// Build (idempotently) the workspace's per-factor float32 value copies.
  /// Runs once per workspace; after it, the float sweeps below allocate
  /// nothing (the zero-allocation steady state extends to the mixed-
  /// precision mode).
  void ensure_float_values(BlockWorkspace& workspace) const;

  /// Float32 twin of weighted_apply_block: same factor traversal over
  /// MatrixF panels through the float kernel seam. Column results carry
  /// float rounding (deterministic per ISA); only the sketch/Taylor panels
  /// ever run through here -- every certificate-bearing quantity stays
  /// double (see BigDotExpOptions::panel_precision).
  void weighted_apply_block_f(const Vector& x, const MatrixF& v, MatrixF& y,
                              BlockWorkspace& workspace) const;

 private:
  std::vector<FactorizedPsd> items_;
  Index dim_ = 0;
  Index total_nnz_ = 0;
};

}  // namespace psdp::sparse
