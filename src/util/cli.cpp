#include "util/cli.hpp"

#include <iostream>

namespace psdp::util {

namespace detail {

template <>
Index parse_value<Index>(const std::string& text) {
  // std::stoll throws raw std::invalid_argument / std::out_of_range, which
  // would bypass the library's InvalidArgument path and surface an opaque
  // what() to the user; translate both into the documented error type.
  std::size_t pos = 0;
  long long v = 0;
  try {
    v = std::stoll(text, &pos);
  } catch (const std::invalid_argument&) {
    throw InvalidArgument(str("cannot parse integer '", text, "'"));
  } catch (const std::out_of_range&) {
    throw InvalidArgument(str("integer '", text, "' is out of range"));
  }
  PSDP_CHECK(pos == text.size(), str("trailing characters in integer '", text, "'"));
  return static_cast<Index>(v);
}

template <>
int parse_value<int>(const std::string& text) {
  return static_cast<int>(parse_value<Index>(text));
}

template <>
Real parse_value<Real>(const std::string& text) {
  std::size_t pos = 0;
  double v = 0;
  try {
    v = std::stod(text, &pos);
  } catch (const std::invalid_argument&) {
    throw InvalidArgument(str("cannot parse real '", text, "'"));
  } catch (const std::out_of_range&) {
    throw InvalidArgument(str("real '", text, "' is out of range"));
  }
  PSDP_CHECK(pos == text.size(), str("trailing characters in real '", text, "'"));
  return v;
}

template <>
bool parse_value<bool>(const std::string& text) {
  if (text == "1" || text == "true" || text == "yes") return true;
  if (text == "0" || text == "false" || text == "no") return false;
  throw InvalidArgument(str("cannot parse boolean '", text, "'"));
}

template <>
std::string parse_value<std::string>(const std::string& text) {
  return text;
}

}  // namespace detail

std::vector<Index> parse_index_list(const std::string& text) {
  std::vector<Index> out;
  std::size_t at = 0;
  while (at < text.size()) {
    const std::size_t comma = text.find(',', at);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    out.push_back(detail::parse_value<Index>(text.substr(at, end - at)));
    // A trailing comma means one more (empty, hence invalid) item.
    at = comma == std::string::npos ? text.size() : comma + 1;
    if (comma != std::string::npos && at == text.size()) {
      throw InvalidArgument(str("trailing comma in list '", text, "'"));
    }
  }
  return out;
}

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void Cli::flag_callback(const std::string& name,
                        const std::string& default_repr,
                        const std::string& help,
                        std::function<void(const std::string&)> assign) {
  ErasedFlag erased;
  erased.name = name;
  erased.help = help;
  erased.default_repr = default_repr;
  erased.assign = std::move(assign);
  add_erased(std::move(erased));
}

void Cli::add_erased(ErasedFlag flag) {
  PSDP_CHECK(find(flag.name) == nullptr,
             str("duplicate flag --", flag.name));
  flags_.push_back(std::move(flag));
}

Cli::ErasedFlag* Cli::find(const std::string& name) {
  for (auto& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

void Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      std::cout << usage();
      return;
    }
    PSDP_CHECK(arg.rfind("--", 0) == 0, str("unexpected argument '", arg, "'"));
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      PSDP_CHECK(i + 1 < argc, str("flag --", name, " expects a value"));
      value = argv[++i];
    }
    ErasedFlag* flag = find(name);
    PSDP_CHECK(flag != nullptr, str("unknown flag --", name));
    try {
      flag->assign(value);
    } catch (const InvalidArgument& e) {
      // Name the flag: "cannot parse real 'bogus'" alone does not tell the
      // user which of a dozen flags was mistyped.
      throw InvalidArgument(str("flag --", name, ": ", e.what()));
    }
  }
}

std::string Cli::usage() const {
  std::ostringstream oss;
  oss << program_ << " -- " << description_ << "\n\nFlags:\n";
  for (const auto& f : flags_) {
    oss << "  --" << f.name << " (default: " << f.default_repr << ")  "
        << f.help << "\n";
  }
  return oss.str();
}

}  // namespace psdp::util
