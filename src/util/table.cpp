#include "util/table.hpp"

#include <iomanip>

namespace psdp::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PSDP_CHECK(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  PSDP_CHECK(cells.size() == headers_.size(),
             str("row has ", cells.size(), " cells, expected ", headers_.size()));
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::setw(static_cast<int>(widths[c])) << row[c];
      out << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 == widths.size() ? 0 : 2);
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string Table::cell(Real value, int precision) {
  std::ostringstream oss;
  oss << std::setprecision(precision) << value;
  return oss.str();
}

std::string Table::cell(Index value) { return std::to_string(value); }

}  // namespace psdp::util
