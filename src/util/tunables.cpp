#include "util/tunables.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <type_traits>

#include "util/cli.hpp"

namespace psdp::util {

namespace {

std::string to_env_name(const std::string& name) {
  std::string env = "PSDP_TUNE_";
  for (char c : name) {
    env += c == '-' ? '_' : static_cast<char>(std::toupper(c));
  }
  return env;
}

std::string to_flag_name(const std::string& name) {
  std::string flag = "tune-";
  for (char c : name) flag += c == '_' ? '-' : c;
  return flag;
}

std::string normalize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '-') c = '_';
  }
  return out;
}

// Exact-round-trip number formatting, the KernelPlan discipline: whole
// values print as integers (the common case for Index tunables), anything
// else at max_digits10 so strtod recovers the bits.
std::string format_number(double v) {
  if (v == std::floor(v) && std::abs(v) < 9.0e15) {
    return str(static_cast<long long>(v));
  }
  std::ostringstream oss;
  oss << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return oss.str();
}

// --- minimal JSON scanning, shared by from_json and the profile store ----
//
// The snapshots this file reads are the snapshots it writes (plus hand
// edits), so the parser accepts exactly the subset to_json emits: objects
// of "key": number pairs and the profile array. Errors carry enough of the
// offending text to locate a hand-edit typo.

std::size_t skip_ws(const std::string& text, std::size_t at) {
  while (at < text.size() &&
         std::isspace(static_cast<unsigned char>(text[at]))) {
    ++at;
  }
  return at;
}

std::size_t expect(const std::string& text, std::size_t at, char c) {
  at = skip_ws(text, at);
  PSDP_CHECK(at < text.size() && text[at] == c,
             str("tunables JSON: expected '", c, "' at offset ", at));
  return at + 1;
}

// Parses "quoted" at `at` (after whitespace); leaves `at` past the close
// quote. Snapshot keys never contain escapes.
std::string parse_quoted(const std::string& text, std::size_t& at) {
  at = expect(text, at, '"');
  const std::size_t close = text.find('"', at);
  PSDP_CHECK(close != std::string::npos,
             "tunables JSON: unterminated string");
  std::string out = text.substr(at, close - at);
  at = close + 1;
  return out;
}

double parse_number(const std::string& text, std::size_t& at) {
  at = skip_ws(text, at);
  const char* begin = text.c_str() + at;
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  PSDP_CHECK(end != begin,
             str("tunables JSON: expected a number at offset ", at));
  at += static_cast<std::size_t>(end - begin);
  return v;
}

// Parses {"key": number, ...} at `at` into `out`; leaves `at` past '}'.
void parse_number_object(const std::string& text, std::size_t& at,
                         std::vector<std::pair<std::string, double>>& out) {
  at = expect(text, at, '{');
  std::size_t probe = skip_ws(text, at);
  if (probe < text.size() && text[probe] == '}') {
    at = probe + 1;
    return;
  }
  while (true) {
    std::string key = parse_quoted(text, at);
    at = expect(text, at, ':');
    out.emplace_back(std::move(key), parse_number(text, at));
    at = skip_ws(text, at);
    PSDP_CHECK(at < text.size() && (text[at] == ',' || text[at] == '}'),
               str("tunables JSON: expected ',' or '}' at offset ", at));
    if (text[at++] == '}') return;
  }
}

std::array<TunableInfo, kTunableCount> make_info() {
  std::array<TunableInfo, kTunableCount> table;
  int at = 0;
#define PSDP_TUNABLE(name_, type_, value_, min_, max_, step_)      \
  table[at].name = #name_;                                         \
  table[at].env = to_env_name(#name_);                             \
  table[at].type_name = #type_;                                    \
  table[at].integral = std::is_integral_v<type_>;                  \
  table[at].default_value = static_cast<double>(value_);           \
  table[at].min = static_cast<double>(min_);                       \
  table[at].max = static_cast<double>(max_);                       \
  table[at].step = static_cast<double>(step_);                     \
  ++at;
  PSDP_TUNABLE_LIST(PSDP_TUNABLE)
#undef PSDP_TUNABLE
  return table;
}

}  // namespace

Tunables::Tunables(bool apply_env) {
  reset();
  if (apply_env) load_env();
}

const std::array<TunableInfo, kTunableCount>& Tunables::all() {
  static const std::array<TunableInfo, kTunableCount> table = make_info();
  return table;
}

const TunableInfo& Tunables::info(TunableId id) {
  return all()[static_cast<std::size_t>(id)];
}

bool Tunables::try_find(const std::string& name, TunableId& id) {
  const std::string key = normalize(name);
  for (std::size_t i = 0; i < all().size(); ++i) {
    if (all()[i].name == key) {
      id = static_cast<TunableId>(i);
      return true;
    }
  }
  return false;
}

TunableId Tunables::find(const std::string& name) {
  TunableId id;
  PSDP_CHECK(try_find(name, id), str("unknown tunable '", name, "'"));
  return id;
}

double Tunables::get(TunableId id) const {
  return values_[static_cast<std::size_t>(id)].load(
      std::memory_order_relaxed);
}

double Tunables::set(TunableId id, double value) {
  const TunableInfo& meta = info(id);
  double v = std::min(meta.max, std::max(meta.min, value));
  if (meta.integral) v = std::round(v);
  values_[static_cast<std::size_t>(id)].store(v, std::memory_order_relaxed);
  return v;
}

namespace {

void validate_value(const TunableInfo& meta, double value) {
  PSDP_CHECK(std::isfinite(value),
             str("tunable ", meta.name, ": value must be finite"));
  PSDP_CHECK(value >= meta.min && value <= meta.max,
             str("tunable ", meta.name, ": value ", format_number(value),
                 " outside range [", format_number(meta.min), ", ",
                 format_number(meta.max), "]"));
  PSDP_CHECK(!meta.integral || value == std::floor(value),
             str("tunable ", meta.name, ": value ", format_number(value),
                 " must be an integer"));
}

}  // namespace

void Tunables::set_checked(TunableId id, double value) {
  validate_value(info(id), value);
  values_[static_cast<std::size_t>(id)].store(value,
                                              std::memory_order_relaxed);
}

void Tunables::set_named(const std::string& name, const std::string& text) {
  const TunableId id = find(name);
  double value = 0;
  try {
    value = detail::parse_value<Real>(text);
  } catch (const InvalidArgument& e) {
    throw InvalidArgument(str("tunable ", info(id).name, ": ", e.what()));
  }
  set_checked(id, value);
}

bool Tunables::is_default(TunableId id) const {
  return get(id) == info(id).default_value;
}

void Tunables::reset(TunableId id) {
  values_[static_cast<std::size_t>(id)].store(info(id).default_value,
                                              std::memory_order_relaxed);
}

void Tunables::reset() {
  for (std::size_t i = 0; i < values_.size(); ++i) {
    reset(static_cast<TunableId>(i));
  }
}

std::string Tunables::to_json() const {
  std::ostringstream oss;
  oss << "{\"tunables\": {";
  for (std::size_t i = 0; i < all().size(); ++i) {
    if (i) oss << ", ";
    oss << '"' << all()[i].name
        << "\": " << format_number(get(static_cast<TunableId>(i)));
  }
  oss << "}}";
  return oss.str();
}

void Tunables::from_json(const std::string& text) {
  std::size_t at = expect(text, 0, '{');
  const std::string section = parse_quoted(text, at);
  PSDP_CHECK(section == "tunables",
             str("tunables JSON: expected key \"tunables\", got \"", section,
                 "\""));
  at = expect(text, at, ':');
  std::vector<std::pair<std::string, double>> pairs;
  parse_number_object(text, at, pairs);
  expect(text, at, '}');
  // Validate every key AND value before applying any: a typo or an
  // out-of-range entry must not leave the registry half-restored.
  for (const auto& [key, value] : pairs) validate_value(info(find(key)), value);
  for (const auto& [key, value] : pairs) set_checked(find(key), value);
}

int Tunables::load_env() {
  int applied = 0;
  for (std::size_t i = 0; i < all().size(); ++i) {
    const TunableInfo& meta = all()[i];
    const char* text = std::getenv(meta.env.c_str());
    if (text == nullptr) continue;
    try {
      set_named(meta.name, text);
    } catch (const InvalidArgument& e) {
      throw InvalidArgument(str(meta.env, ": ", e.what()));
    }
    ++applied;
  }
  return applied;
}

Tunables& tunables() {
  static Tunables instance{/*apply_env=*/true};
  return instance;
}

#define PSDP_TUNABLE(name, type, value, min, max, step)              \
  type tunable_##name() {                                            \
    return static_cast<type>(tunables().get(TunableId::k_##name));   \
  }
PSDP_TUNABLE_LIST(PSDP_TUNABLE)
#undef PSDP_TUNABLE

void add_tunable_flags(Cli& cli) {
  for (const TunableInfo& meta : Tunables::all()) {
    const std::string name = meta.name;  // value-captured per flag
    cli.flag_callback(
        to_flag_name(meta.name), format_number(meta.default_value),
        str("tunable ", meta.name, " in [", format_number(meta.min), ", ",
            format_number(meta.max), "]"),
        [name](const std::string& text) {
          tunables().set_named(name, text);
        });
  }
  cli.flag_callback("tunables", "",
                    "JSON tunables snapshot or profile file to apply",
                    [](const std::string& path) {
                      std::ifstream in(path);
                      PSDP_CHECK(in, str("cannot open '", path, "'"));
                      std::ostringstream text;
                      text << in.rdbuf();
                      tunables().from_json(text.str());
                    });
}

ShapeBucket ShapeBucket::of(Index nnz, Index rows, Index cols) {
  // Degenerate shapes (empty instances) bucket at 0 with 1-element ones.
  const auto bucket = [](Index n) { return n <= 1 ? 0 : ceil_log2(n); };
  ShapeBucket b;
  b.log2_nnz = bucket(nnz);
  b.log2_rows = bucket(rows);
  b.log2_cols = bucket(cols);
  return b;
}

void TunableProfileStore::put(
    const ShapeBucket& bucket,
    std::vector<std::pair<std::string, double>> values) {
  for (auto& entry : entries_) {
    if (entry.bucket == bucket) {
      entry.values = std::move(values);
      return;
    }
  }
  entries_.push_back(Entry{bucket, std::move(values)});
}

const std::vector<std::pair<std::string, double>>* TunableProfileStore::find(
    const ShapeBucket& bucket) const {
  for (const auto& entry : entries_) {
    if (entry.bucket == bucket) return &entry.values;
  }
  return nullptr;
}

bool TunableProfileStore::apply(const ShapeBucket& bucket,
                                Tunables& registry) const {
  const auto* values = find(bucket);
  if (values == nullptr) return false;
  for (const auto& [name, value] : *values) {
    registry.set_checked(Tunables::find(name), value);
  }
  return true;
}

std::string TunableProfileStore::to_json() const {
  std::ostringstream oss;
  oss << "{\"tunable_profiles\": [";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (i) oss << ", ";
    oss << "{\"log2_nnz\": " << e.bucket.log2_nnz
        << ", \"log2_rows\": " << e.bucket.log2_rows
        << ", \"log2_cols\": " << e.bucket.log2_cols << ", \"tunables\": {";
    for (std::size_t j = 0; j < e.values.size(); ++j) {
      if (j) oss << ", ";
      oss << '"' << e.values[j].first
          << "\": " << format_number(e.values[j].second);
    }
    oss << "}}";
  }
  oss << "]}";
  return oss.str();
}

TunableProfileStore TunableProfileStore::from_json(const std::string& text) {
  TunableProfileStore store;
  std::size_t at = expect(text, 0, '{');
  const std::string section = parse_quoted(text, at);
  PSDP_CHECK(section == "tunable_profiles",
             str("tunables JSON: expected key \"tunable_profiles\", got \"",
                 section, "\""));
  at = expect(text, at, ':');
  at = expect(text, at, '[');
  std::size_t probe = skip_ws(text, at);
  if (probe < text.size() && text[probe] == ']') return store;
  while (true) {
    at = expect(text, at, '{');
    Entry entry;
    std::vector<std::pair<std::string, double>> fields;
    // The three bucket coordinates, in any order, then "tunables".
    bool saw_tunables = false;
    while (true) {
      const std::string key = parse_quoted(text, at);
      at = expect(text, at, ':');
      if (key == "tunables") {
        parse_number_object(text, at, entry.values);
        saw_tunables = true;
      } else if (key == "log2_nnz") {
        entry.bucket.log2_nnz =
            static_cast<std::int64_t>(parse_number(text, at));
      } else if (key == "log2_rows") {
        entry.bucket.log2_rows =
            static_cast<std::int64_t>(parse_number(text, at));
      } else if (key == "log2_cols") {
        entry.bucket.log2_cols =
            static_cast<std::int64_t>(parse_number(text, at));
      } else {
        throw InvalidArgument(
            str("tunables JSON: unknown profile key \"", key, "\""));
      }
      at = skip_ws(text, at);
      PSDP_CHECK(at < text.size() && (text[at] == ',' || text[at] == '}'),
                 str("tunables JSON: expected ',' or '}' at offset ", at));
      if (text[at++] == '}') break;
    }
    PSDP_CHECK(saw_tunables,
               "tunables JSON: profile entry missing \"tunables\"");
    // Validate names eagerly so a corrupt profile fails at load, not at
    // the first apply() deep inside serve startup.
    for (const auto& [name, value] : entry.values) Tunables::find(name);
    store.entries_.push_back(std::move(entry));
    at = skip_ws(text, at);
    PSDP_CHECK(at < text.size() && (text[at] == ',' || text[at] == ']'),
               str("tunables JSON: expected ',' or ']' at offset ", at));
    if (text[at++] == ']') break;
  }
  return store;
}

TunableProfileStore TunableProfileStore::load(const std::string& path) {
  std::ifstream in(path);
  PSDP_CHECK(in, str("cannot open tunables profile '", path, "'"));
  std::ostringstream text;
  text << in.rdbuf();
  return from_json(text.str());
}

void TunableProfileStore::save(const std::string& path) const {
  std::ofstream out(path);
  PSDP_CHECK(out, str("cannot write tunables profile '", path, "'"));
  out << to_json() << "\n";
  PSDP_CHECK(out.good(), str("write to '", path, "' failed"));
}

}  // namespace psdp::util
