// The unified tunable registry: one definition point for every numeric
// performance knob in the library.
//
// Before this layer each knob landed with its own ad-hoc flag, default and
// validation, scattered across core options (block_size, dot_block_size,
// kappa_cap), the sparse autotuner (segment window, plan-cache capacity),
// the serve scheduler (lane count, wide_work, cache capacities) and the par
// substrate (grain, thread default). PSDP_TUNABLE_LIST is now the single
// source of truth, in the chess-engine SPSA idiom: each entry names the
// knob, its storage type, the default, the allowed [min, max] range, and
// the step the SPSA tuner perturbs it by. The list expands into
//
//   * an enum (TunableId) and a metadata table (Tunables::info),
//   * typed accessors (util::tunable_block_size(), ...) that the owning
//     options structs use as their default member initializers -- so a
//     default-constructed BigDotExpOptions / SchedulerOptions / ... reads
//     whatever the registry currently holds, and holds the legacy
//     hard-coded value until something overrides it (bit-identical
//     defaults, locked by tests/test_tunables.cpp),
//   * auto-generated CLI flags (--tune-<name>, add_tunable_flags),
//     PSDP_TUNE_<NAME> environment overrides, serve-manifest "set
//     key=value" lines, and a JSON snapshot/restore with the same exact
//     round-trip discipline as sparse::KernelPlan.
//
// Override precedence is purely temporal -- later writers win -- and the
// wiring applies them in the order default < environment (registry
// construction) < CLI flags (parse time) < manifest `set` lines (manifest
// load time).
//
// Error discipline: programmatic set() clamps into [min, max] (the SPSA
// path, where perturbations routinely poke past the fence), while every
// text-driven path (CLI, env, manifest, JSON) goes through set_named() /
// set_checked() and throws InvalidArgument naming the tunable on
// unparsable text or an out-of-range value.
//
// Values are relaxed atomics: solver hot paths read them on options
// construction (and par::parallel_for reads `grain` per loop), while an
// SPSA driver writes them between evaluations from another context.
//
// The SPSA loop itself lives in util/spsa.hpp; tuned per-shape profiles
// (the (nnz, rows, cols) bucket -> snapshot map persisted by bench_load
// and loaded at serve startup) are TunableProfileStore below.
#pragma once

#include <array>
#include <atomic>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace psdp::util {

class Cli;

// PSDP_TUNABLE(name, type, value, min, max, step)
//
//   name   registry identifier (also the manifest/JSON key; the CLI flag is
//          --tune-<name> with '_' -> '-', the env var PSDP_TUNE_<NAME>)
//   type   C++ type the typed accessor returns (Index or Real)
//   value  default -- MUST equal the legacy hard-coded value it replaced
//   min    smallest value accepted / clamped to
//   max    largest value accepted / clamped to
//   step   SPSA perturbation unit (the scale on which the knob moves)
//
// Knob semantics (and the option field each default used to live in):
//   block_size           BigDotExpOptions::block_size; 0 = auto
//   dot_block_size       OptimizeOptions::dot_block_size; 0 = inherit
//   segment_rows         TransposePlanOptions::segment_rows (segment grid
//                        granularity); 0 would disable grids, so min is 16
//   window_bytes         TransposePlanOptions::window_bytes (segmented-
//                        gather window)
//   lanes                SchedulerOptions::lanes; 0 = auto
//   threads              par thread-pool default width; 0 = hardware
//   grain                par::parallel_* minimum chunk size
//   wide_work            SchedulerOptions::wide_work gang threshold
//   kappa_cap            SketchedOracleOptions::kappa_cap; 0 = tracked
//                        runtime bounds only
//   rebase_interval      sketched-oracle incremental-bound rebase cadence
//   bound_flux_ratio     sketched-oracle cancellation-guard ratio
//   cache_capacity       ArtifactCache::Options::capacity
//   workspaces_per_entry ArtifactCache::Options::workspaces_per_entry
//   plan_cache_capacity  process-wide TransposePlanCache capacity
//   shards               constraint-shard count of factorized instances
//                        (ShardedFactorizedSet); 1 = the unsharded legacy
//                        path (bit-identical), >1 engages the per-shard
//                        sweep with fixed-order reductions
// The block-size steps are 16, not the flag granularity of 4: their 0
// default is an "auto" sentinel, so the first SPSA probe lands on 0 +/- step
// and must be a *plausible* fixed block, not a pathological tiny one.
#define PSDP_TUNABLE_LIST(PSDP_TUNABLE)                                   \
  PSDP_TUNABLE(block_size, Index, 0, 0, 256, 16)                          \
  PSDP_TUNABLE(dot_block_size, Index, 0, 0, 256, 16)                      \
  PSDP_TUNABLE(segment_rows, Index, 1024, 16, 1048576, 256)               \
  PSDP_TUNABLE(window_bytes, Index, 1048576, 4096, 268435456, 262144)     \
  PSDP_TUNABLE(lanes, Index, 0, 0, 1024, 1)                               \
  PSDP_TUNABLE(threads, Index, 0, 0, 1024, 1)                             \
  PSDP_TUNABLE(grain, Index, 1024, 1, 1048576, 256)                       \
  PSDP_TUNABLE(wide_work, Index, 67108864, 65536, 1099511627776, 16777216)\
  PSDP_TUNABLE(kappa_cap, Real, 0, 0, 1e9, 0.5)                           \
  PSDP_TUNABLE(rebase_interval, Index, 64, 1, 4096, 8)                    \
  PSDP_TUNABLE(bound_flux_ratio, Real, 8, 1, 64, 1)                       \
  PSDP_TUNABLE(cache_capacity, Index, 32, 1, 4096, 4)                     \
  PSDP_TUNABLE(workspaces_per_entry, Index, 8, 0, 256, 1)                 \
  PSDP_TUNABLE(plan_cache_capacity, Index, 256, 1, 65536, 16)              \
  PSDP_TUNABLE(shards, Index, 1, 1, 256, 1)

/// One enumerator per registry entry, in list order.
enum class TunableId : int {
#define PSDP_TUNABLE(name, type, value, min, max, step) k_##name,
  PSDP_TUNABLE_LIST(PSDP_TUNABLE)
#undef PSDP_TUNABLE
};

/// Number of registered tunables.
inline constexpr int kTunableCount = 0
#define PSDP_TUNABLE(name, type, value, min, max, step) +1
    PSDP_TUNABLE_LIST(PSDP_TUNABLE)
#undef PSDP_TUNABLE
    ;

/// Registry metadata of one tunable (shared by every Tunables instance).
struct TunableInfo {
  std::string name;       ///< registry key, e.g. "block_size"
  std::string env;        ///< environment override, e.g. "PSDP_TUNE_BLOCK_SIZE"
  std::string type_name;  ///< "Index" or "Real"
  bool integral = false;  ///< integer-valued (text with a fraction is an error)
  double default_value = 0;
  double min = 0;
  double max = 0;
  double step = 0;  ///< SPSA perturbation unit
};

/// A set of tunable values. The process-wide instance behind util::tunables()
/// is what the typed accessors and all override wiring read and write; tests
/// (and the SPSA loop, when tuning hypothetically) may hold private
/// instances.
class Tunables {
 public:
  /// Fresh registry at the built-in defaults. With apply_env, PSDP_TUNE_*
  /// overrides are applied on top (named InvalidArgument on bad values).
  explicit Tunables(bool apply_env = false);

  Tunables(const Tunables&) = delete;
  Tunables& operator=(const Tunables&) = delete;

  static const TunableInfo& info(TunableId id);
  static const std::array<TunableInfo, kTunableCount>& all();
  /// Id by registry name; '-' is accepted for '_' (CLI spelling). Throws
  /// InvalidArgument naming the unknown tunable.
  static TunableId find(const std::string& name);
  static bool try_find(const std::string& name, TunableId& id);

  double get(TunableId id) const;
  /// Programmatic set: clamps into [min, max], rounds integral tunables to
  /// the nearest integer, returns the value actually stored. The SPSA path.
  double set(TunableId id, double value);
  /// Range-checked set: throws InvalidArgument naming the tunable when
  /// `value` falls outside [min, max] (or is fractional for an integral
  /// tunable). The JSON/profile path.
  void set_checked(TunableId id, double value);
  /// Parse-and-set with util::Cli's named-error discipline: unparsable text
  /// and out-of-range values throw InvalidArgument naming the tunable. The
  /// CLI / env / manifest path.
  void set_named(const std::string& name, const std::string& text);

  bool is_default(TunableId id) const;
  void reset(TunableId id);
  void reset();  ///< every tunable back to its default

  /// Exact-round-trip snapshot: {"tunables": {"block_size": 0, ...}} with
  /// every tunable present, in registry order, at max_digits10 precision.
  std::string to_json() const;
  /// Restore a snapshot (or apply a partial one): every key present is
  /// applied through set_checked; keys absent keep their current value;
  /// unknown keys throw a named InvalidArgument.
  void from_json(const std::string& text);

  /// Apply every PSDP_TUNE_<NAME> environment override present; returns how
  /// many applied. Bad values throw naming both the variable and the text.
  int load_env();

 private:
  std::array<std::atomic<double>, kTunableCount> values_;
};

/// The process-wide registry: constructed on first use with PSDP_TUNE_*
/// environment overrides applied.
Tunables& tunables();

// Typed accessors -- the default member initializers of the owning options
// structs call these, e.g. `Index block_size = util::tunable_block_size();`.
#define PSDP_TUNABLE(name, type, value, min, max, step) type tunable_##name();
PSDP_TUNABLE_LIST(PSDP_TUNABLE)
#undef PSDP_TUNABLE

/// Register one --tune-<name> flag per registry entry on `cli` (plus a
/// --tunables=FILE flag restoring a JSON snapshot); parse() assigns straight
/// into the process-wide registry with the usual named range errors.
void add_tunable_flags(Cli& cli);

/// The (ceil_log2 nnz, ceil_log2 rows, ceil_log2 cols) shape bucket tuned
/// profiles are keyed by -- the same bucketing discipline as the
/// TransposePlanCache memo, so same-shaped workloads share a profile.
struct ShapeBucket {
  std::int64_t log2_nnz = 0;
  std::int64_t log2_rows = 0;
  std::int64_t log2_cols = 0;

  static ShapeBucket of(Index nnz, Index rows, Index cols);

  friend bool operator==(const ShapeBucket& a, const ShapeBucket& b) {
    return a.log2_nnz == b.log2_nnz && a.log2_rows == b.log2_rows &&
           a.log2_cols == b.log2_cols;
  }
};

/// Persisted tuned profiles: shape bucket -> (tunable name, value) pairs.
/// JSON round-trips exactly (same discipline as KernelPlan):
///
///   {"tunable_profiles": [
///     {"log2_nnz": 14, "log2_rows": 10, "log2_cols": 4,
///      "tunables": {"dot_block_size": 16, "lanes": 2}}
///   ]}
///
/// bench_load persists one after an SPSA run; serve entry points load one
/// at startup and apply() the bucket matching their workload's shape.
class TunableProfileStore {
 public:
  /// Record `values` for `bucket`, replacing a previous entry.
  void put(const ShapeBucket& bucket,
           std::vector<std::pair<std::string, double>> values);

  /// The profile recorded for `bucket`; nullptr when absent.
  const std::vector<std::pair<std::string, double>>* find(
      const ShapeBucket& bucket) const;

  /// Apply the bucket's values to `registry` (set_checked: named errors on
  /// a corrupted profile); false when no entry matches.
  bool apply(const ShapeBucket& bucket, Tunables& registry) const;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  std::string to_json() const;
  static TunableProfileStore from_json(const std::string& text);
  static TunableProfileStore load(const std::string& path);
  void save(const std::string& path) const;

 private:
  struct Entry {
    ShapeBucket bucket;
    std::vector<std::pair<std::string, double>> values;
  };
  std::vector<Entry> entries_;
};

}  // namespace psdp::util
