#include "util/common.hpp"

namespace psdp {

namespace detail {

void throw_check_failure(const char* kind, const char* cond, const char* file,
                         int line, const std::string& msg) {
  std::ostringstream oss;
  oss << kind << " failed: (" << cond << ") at " << file << ":" << line << ": "
      << msg;
  const std::string what = oss.str();
  if (std::string(kind) == "PSDP_CHECK") throw InvalidArgument(what);
  if (std::string(kind) == "PSDP_NUMERIC_CHECK") throw NumericalError(what);
  throw InternalError(what);
}

}  // namespace detail

Index ceil_log2(Index n) {
  PSDP_CHECK(n > 0, "ceil_log2 requires a positive argument");
  Index bits = 0;
  Index v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace psdp
