// Common definitions shared by every psdp module: the scalar type, index
// types, error handling, and a handful of small numeric helpers.
//
// Error-handling policy (see DESIGN.md):
//  * PSDP_CHECK(cond, msg)      -- precondition on user-supplied data; throws
//                                  psdp::InvalidArgument, always enabled.
//  * PSDP_ASSERT(cond)          -- internal invariant; throws psdp::InternalError,
//                                  compiled out in NDEBUG-free builds only if
//                                  PSDP_DISABLE_ASSERTS is defined.
//  * PSDP_NUMERIC_CHECK(cond)   -- numerical-sanity condition (finite values,
//                                  convergence); throws psdp::NumericalError.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

namespace psdp {

/// Scalar type used throughout the library. The algorithms in the paper are
/// stable in double precision; float loses too much in the matrix
/// exponential's Taylor tail for large kappa.
using Real = double;

/// Index type for matrix dimensions and counts. Signed, following the C++
/// Core Guidelines (ES.100-107) advice for arithmetic-heavy loop code.
using Index = std::int64_t;

/// Base class for all psdp exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when user-supplied input violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant fails (a library bug, not a user error).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Thrown when a numerical process fails to meet its contract (non-finite
/// values, iteration-limit exhaustion in an eigensolver, ...).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* kind, const char* cond,
                                      const char* file, int line,
                                      const std::string& msg);
}  // namespace detail

#define PSDP_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::psdp::detail::throw_check_failure("PSDP_CHECK", #cond, __FILE__,   \
                                          __LINE__, (msg));                \
    }                                                                      \
  } while (0)

#define PSDP_NUMERIC_CHECK(cond, msg)                                      \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::psdp::detail::throw_check_failure("PSDP_NUMERIC_CHECK", #cond,     \
                                          __FILE__, __LINE__, (msg));      \
    }                                                                      \
  } while (0)

#ifdef PSDP_DISABLE_ASSERTS
#define PSDP_ASSERT(cond) ((void)0)
#else
#define PSDP_ASSERT(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::psdp::detail::throw_check_failure("PSDP_ASSERT", #cond, __FILE__,  \
                                          __LINE__, "internal invariant"); \
    }                                                                      \
  } while (0)
#endif

/// Machine epsilon for Real.
inline constexpr Real kEps = std::numeric_limits<Real>::epsilon();

/// Relative comparison: |a-b| <= tol * max(1, |a|, |b|).
inline bool approx_equal(Real a, Real b, Real tol) {
  const Real scale = std::max({Real{1}, std::abs(a), std::abs(b)});
  return std::abs(a - b) <= tol * scale;
}

/// Square, because x*x with long expressions is error-prone.
inline Real sq(Real x) { return x * x; }

/// Natural-log-based ceiling of log2 for positive integers.
Index ceil_log2(Index n);

/// String formatting helper: str("x=", 3, " y=", 4.5).
template <typename... Args>
std::string str(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}

}  // namespace psdp
