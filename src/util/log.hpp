// Minimal leveled logger. Not a general-purpose logging framework: just
// enough for the solvers to report per-iteration diagnostics when asked and
// for examples/benches to narrate what they are doing.
//
// Thread-safe: each log call formats into a local buffer and writes it with a
// single mutex-protected stream insertion.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace psdp::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void write_log_line(LogLevel level, const std::string& line);
}

/// Log with streaming syntax: PSDP_LOG(kInfo) << "iter " << t;
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace psdp::util

#define PSDP_LOG(level)                                                   \
  ::psdp::util::LogMessage(::psdp::util::LogLevel::level, __FILE__, __LINE__)
