#include "util/wire.hpp"

#include <cstring>

namespace psdp::util {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string hex_bits(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHexDigits[bits & 0xf];
    bits >>= 4;
  }
  return out;
}

double from_hex_bits(const std::string& text, const std::string& what) {
  PSDP_CHECK(text.size() == 16,
             str(what, ": expected 16 hex digits, got '", text, "'"));
  std::uint64_t bits = 0;
  for (const char c : text) {
    const int v = hex_value(c);
    PSDP_CHECK(v >= 0, str(what, ": invalid hex digit '", c, "' in '", text,
                           "'"));
    bits = (bits << 4) | static_cast<std::uint64_t>(v);
  }
  double out = 0;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

std::string escape_line(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case ' ': out += "\\s"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape_line(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\' || i + 1 >= text.size()) {
      out += text[i];
      continue;
    }
    ++i;
    switch (text[i]) {
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 's': out += ' '; break;
      default:
        out += '\\';
        out += text[i];
    }
  }
  return out;
}

}  // namespace psdp::util
