#include "util/log.hpp"

#include <atomic>
#include <cstring>

namespace psdp::util {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace detail {
void write_log_line(LogLevel level, const std::string& line) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::ostream& out = level >= LogLevel::kWarn ? std::cerr : std::clog;
  out << line << '\n';
}
}  // namespace detail

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_level.load()), level_(level) {
  if (enabled_) {
    stream_ << "[" << level_name(level) << " " << basename_of(file) << ":"
            << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) detail::write_log_line(level_, stream_.str());
}

}  // namespace psdp::util
