// SPSA (simultaneous perturbation stochastic approximation) over the
// tunable registry -- the chess-engine tuning loop from SNIPPETS.md
// Snippet 2, pointed at solver knobs instead of evaluation weights.
//
// Each iteration draws one Rademacher direction delta in {-1, +1}^d,
// evaluates the objective at theta + c_k * delta and theta - c_k * delta
// (two evaluations regardless of dimension -- the whole point of SPSA),
// and steps along the estimated gradient with the standard decaying gains
//
//   a_k = a / (k + 1 + A)^alpha     (alpha = 0.602)
//   c_k = c / (k + 1)^gamma         (gamma = 0.101)
//
// All arithmetic happens in *step units* (value / step from the registry
// metadata), so one SPSA schedule serves knobs spanning five orders of
// magnitude; values are clamped to the registry's [min, max] and integral
// knobs round to the step grid. The driver evaluates the unperturbed
// starting point first and keeps the best point *seen* (perturbation
// evaluations included): with a noisy objective the iterate can drift, and
// serve startup must never load a profile worse than the default it
// replaced. Randomness comes from one seeded mt19937_64, so a fixed seed
// replays the exact evaluation sequence (locked by test).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/tunables.hpp"

namespace psdp::util {

struct SpsaOptions {
  /// Knobs to tune, by TunableId. Everything else stays untouched.
  std::vector<TunableId> knobs;
  /// Gradient iterations; 2 objective evaluations each, plus the baseline.
  int iterations = 8;
  /// PRNG seed for the Rademacher directions (fixed seed => deterministic).
  std::uint64_t seed = 1;
  /// First-iteration gradient step, in registry step units (the `a` gain).
  double step_scale = 2.0;
  /// First-iteration probe offset, in registry step units (the `c` gain).
  double perturbation_scale = 1.0;
  /// Gain decay exponents; the classic Spall constants.
  double alpha = 0.602;
  double gamma = 0.101;
  /// Stability constant A in the a_k schedule (typically ~10% of the
  /// iteration budget).
  double stability = 1.0;
};

struct SpsaResult {
  double initial_objective = 0;  ///< objective at the starting point
  double best_objective = 0;     ///< objective at the returned point
  int evaluations = 0;           ///< objective calls made (2*iters + 1)
  /// (name, value) pairs for the tuned knobs -- the starting values and the
  /// winning values, in SpsaOptions::knobs order. `tuned` is exactly what
  /// TunableProfileStore::put expects.
  std::vector<std::pair<std::string, double>> initial;
  std::vector<std::pair<std::string, double>> tuned;
  bool improved() const { return best_objective < initial_objective; }
};

/// Minimize `objective` over `options.knobs` of `registry`. The objective
/// is called with the candidate values already stored in `registry` (read
/// them through the typed accessors / get()); lower is better. On return
/// the registry holds the best point seen. Throws InvalidArgument on an
/// empty knob list or a non-positive iteration count.
SpsaResult spsa_minimize(Tunables& registry, const SpsaOptions& options,
                         const std::function<double()>& objective);

}  // namespace psdp::util
