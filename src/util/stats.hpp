// Small statistics helpers used by the experiment harness: summary
// statistics and least-squares fits. The log-log fit is how benches report
// empirical scaling exponents ("work grows like q^1.02").
#pragma once

#include <span>
#include <vector>

#include "util/common.hpp"

namespace psdp::util {

/// Summary statistics of a sample.
struct Summary {
  Index count = 0;
  Real mean = 0;
  Real stddev = 0;  ///< sample standard deviation (n-1 denominator)
  Real min = 0;
  Real max = 0;
};

/// Compute summary statistics. Empty input yields a zeroed Summary.
Summary summarize(std::span<const Real> xs);

/// Ordinary least squares fit y = slope*x + intercept.
struct LinearFit {
  Real slope = 0;
  Real intercept = 0;
  Real r_squared = 0;
};

/// Fit a line through (x, y) pairs; requires at least two distinct x values.
LinearFit fit_line(std::span<const Real> xs, std::span<const Real> ys);

/// Fit log(y) = slope*log(x) + c, i.e. the power-law exponent of y in x.
/// Requires strictly positive data.
LinearFit fit_loglog(std::span<const Real> xs, std::span<const Real> ys);

/// Median of a sample (copies and sorts). Empty input throws.
Real median(std::vector<Real> xs);

}  // namespace psdp::util
