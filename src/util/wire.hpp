// Wire-format scalar codecs shared by the solverd protocol (serve/solverd)
// and its clients (bench_load --endpoint, the tests).
//
// The daemon streams solver results as text lines, but the serve layer's
// acceptance gates compare payloads *bitwise* (serve::payload_bitwise_equal):
// a decimal rendering that loses one ulp would fail the identity gate. So
// every Real crossing the wire travels as the 16-hex-digit IEEE-754 bit
// pattern of the double -- exact by construction, locale-independent, and
// fixed-width. Free-text fields (error messages) are escaped onto a single
// line so the line-oriented result format survives arbitrary what() text.
#pragma once

#include <cstdint>
#include <string>

#include "util/common.hpp"

namespace psdp::util {

/// The 16 lowercase hex digits of the IEEE-754 bit pattern of `v`
/// (big-endian nibble order: hex_bits(0.0) == "0000000000000000").
std::string hex_bits(double v);

/// Inverse of hex_bits. Throws InvalidArgument unless `text` is exactly 16
/// hex digits; `what` names the field in the error.
double from_hex_bits(const std::string& text, const std::string& what);

/// Escape `text` into one whitespace-free token: backslash, newline,
/// carriage return, and space become "\\", "\n", "\r", "\s". Result lines
/// are space-separated key=value tokens, so every free-text value (labels,
/// error messages) must come out token-safe.
std::string escape_line(const std::string& text);

/// Inverse of escape_line. Unknown escapes pass through verbatim.
std::string unescape_line(const std::string& text);

}  // namespace psdp::util
