// A small command-line flag parser for examples and bench binaries.
//
// Usage:
//   psdp::util::Cli cli("bench_width", "Width-independence sweep");
//   auto& n   = cli.flag<Index>("n", 64, "number of constraints");
//   auto& eps = cli.flag<Real>("eps", 0.1, "accuracy parameter");
//   cli.parse(argc, argv);            // throws InvalidArgument on bad input
//   use(n.value, eps.value);
//
// Accepted syntax: --name=value, --name value, and --help.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace psdp::util {

class Cli {
 public:
  Cli(std::string program, std::string description);

  template <typename T>
  struct Flag {
    T value;
    std::string name;
    std::string help;
    bool set = false;
  };

  /// Register a typed flag with a default value. The returned reference is
  /// stable for the lifetime of the Cli object.
  template <typename T>
  Flag<T>& flag(const std::string& name, T default_value,
                const std::string& help);

  /// Register a flag whose value is consumed by `assign` instead of stored:
  /// the callback receives the raw text and may throw InvalidArgument, which
  /// parse() wraps with the flag name like any typed flag. For flags that
  /// write into external state (the tunable registry) or parse structured
  /// values (width lists).
  void flag_callback(const std::string& name, const std::string& default_repr,
                     const std::string& help,
                     std::function<void(const std::string&)> assign);

  /// Parse argv. On --help, prints usage and sets help_requested().
  void parse(int argc, char** argv);

  bool help_requested() const { return help_requested_; }
  std::string usage() const;

 private:
  struct ErasedFlag {
    std::string name;
    std::string help;
    std::string default_repr;
    std::function<void(const std::string&)> assign;
  };

  void add_erased(ErasedFlag flag);
  ErasedFlag* find(const std::string& name);

  std::string program_;
  std::string description_;
  std::vector<ErasedFlag> flags_;
  // Typed flag storage; deque-like stability via unique_ptr.
  std::vector<std::shared_ptr<void>> storage_;
  bool help_requested_ = false;
};

namespace detail {
template <typename T>
T parse_value(const std::string& text);
}  // namespace detail

/// Parse a comma-separated integer list ("4,8,16") through the same
/// error-wrapping path as every scalar flag: malformed or empty items throw
/// InvalidArgument (never a raw std::invalid_argument). An empty string is
/// an empty list.
std::vector<Index> parse_index_list(const std::string& text);

template <typename T>
Cli::Flag<T>& Cli::flag(const std::string& name, T default_value,
                        const std::string& help) {
  auto holder = std::make_shared<Flag<T>>();
  holder->value = default_value;
  holder->name = name;
  holder->help = help;
  Flag<T>* raw = holder.get();
  storage_.push_back(holder);

  ErasedFlag erased;
  erased.name = name;
  erased.help = help;
  erased.default_repr = str(default_value);
  erased.assign = [raw](const std::string& text) {
    raw->value = detail::parse_value<T>(text);
    raw->set = true;
  };
  add_erased(std::move(erased));
  return *raw;
}

}  // namespace psdp::util
