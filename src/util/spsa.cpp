#include "util/spsa.hpp"

#include <cmath>
#include <random>

namespace psdp::util {

namespace {

// Clamp a step-unit coordinate into the knob's fence and, for integral
// knobs, snap the resulting value to the step grid anchored at min (so a
// perturbation of +-1 step unit always moves an integral knob by a full
// step instead of vanishing in the rounding).
double clamp_units(const TunableInfo& meta, double units) {
  const double lo = meta.min / meta.step;
  const double hi = meta.max / meta.step;
  double u = std::min(hi, std::max(lo, units));
  if (meta.integral) {
    u = lo + std::round(u - lo);
    u = std::min(hi, std::max(lo, u));
  }
  return u;
}

void store_point(Tunables& registry, const std::vector<TunableId>& knobs,
                 const std::vector<double>& units) {
  for (std::size_t i = 0; i < knobs.size(); ++i) {
    registry.set(knobs[i], units[i] * Tunables::info(knobs[i]).step);
  }
}

std::vector<std::pair<std::string, double>> name_point(
    const Tunables& registry, const std::vector<TunableId>& knobs) {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(knobs.size());
  for (TunableId id : knobs) {
    out.emplace_back(Tunables::info(id).name, registry.get(id));
  }
  return out;
}

}  // namespace

SpsaResult spsa_minimize(Tunables& registry, const SpsaOptions& options,
                         const std::function<double()>& objective) {
  PSDP_CHECK(!options.knobs.empty(), "spsa: no knobs selected");
  PSDP_CHECK(options.iterations > 0, "spsa: iterations must be positive");
  PSDP_CHECK(options.perturbation_scale > 0,
             "spsa: perturbation_scale must be positive");
  for (TunableId id : options.knobs) {
    PSDP_CHECK(Tunables::info(id).step > 0,
               str("spsa: tunable ", Tunables::info(id).name,
                   " has no step"));
  }

  const std::size_t d = options.knobs.size();
  std::vector<double> theta(d);  // current iterate, in step units
  for (std::size_t i = 0; i < d; ++i) {
    theta[i] = registry.get(options.knobs[i]) /
               Tunables::info(options.knobs[i]).step;
  }

  SpsaResult result;
  result.initial = name_point(registry, options.knobs);

  // Baseline: the unperturbed starting point is evaluated first, and is
  // the point to beat -- a tuned profile must never regress the default.
  store_point(registry, options.knobs, theta);
  result.initial_objective = objective();
  ++result.evaluations;
  result.best_objective = result.initial_objective;
  std::vector<double> best = theta;

  std::mt19937_64 rng(options.seed);
  std::vector<double> delta(d);
  std::vector<double> probe(d);
  for (int k = 0; k < options.iterations; ++k) {
    const double a_k =
        options.step_scale /
        std::pow(k + 1 + options.stability, options.alpha);
    const double c_k =
        options.perturbation_scale / std::pow(k + 1, options.gamma);

    for (std::size_t i = 0; i < d; ++i) {
      delta[i] = (rng() & 1u) ? 1.0 : -1.0;
    }

    const auto evaluate_at = [&](double sign) {
      for (std::size_t i = 0; i < d; ++i) {
        probe[i] = clamp_units(Tunables::info(options.knobs[i]),
                               theta[i] + sign * c_k * delta[i]);
      }
      store_point(registry, options.knobs, probe);
      const double y = objective();
      ++result.evaluations;
      if (y < result.best_objective) {
        result.best_objective = y;
        best = probe;
      }
      return y;
    };
    const double y_plus = evaluate_at(+1.0);
    const double y_minus = evaluate_at(-1.0);

    // ghat_i = (y+ - y-) / (2 c_k delta_i); delta_i in {-1, +1} so the
    // division is a multiplication.
    const double diff = (y_plus - y_minus) / (2.0 * c_k);
    for (std::size_t i = 0; i < d; ++i) {
      theta[i] = clamp_units(Tunables::info(options.knobs[i]),
                             theta[i] - a_k * diff * delta[i]);
    }
  }

  // Leave the registry at the best point seen and report it.
  store_point(registry, options.knobs, best);
  result.tuned = name_point(registry, options.knobs);
  return result;
}

}  // namespace psdp::util
