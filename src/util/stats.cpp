#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace psdp::util {

Summary summarize(std::span<const Real> xs) {
  Summary s;
  s.count = static_cast<Index>(xs.size());
  if (xs.empty()) return s;
  Real sum = 0;
  s.min = xs[0];
  s.max = xs[0];
  for (Real x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<Real>(xs.size());
  if (xs.size() > 1) {
    Real ss = 0;
    for (Real x : xs) ss += sq(x - s.mean);
    s.stddev = std::sqrt(ss / static_cast<Real>(xs.size() - 1));
  }
  return s;
}

LinearFit fit_line(std::span<const Real> xs, std::span<const Real> ys) {
  PSDP_CHECK(xs.size() == ys.size(), "fit_line: size mismatch");
  PSDP_CHECK(xs.size() >= 2, "fit_line: need at least two points");
  const Real n = static_cast<Real>(xs.size());
  Real sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const Real det = n * sxx - sx * sx;
  PSDP_CHECK(det > 0, "fit_line: x values are all identical");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / det;
  fit.intercept = (sy - fit.slope * sx) / n;
  const Real ss_tot = syy - sy * sy / n;
  if (ss_tot > 0) {
    Real ss_res = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      ss_res += sq(ys[i] - (fit.slope * xs[i] + fit.intercept));
    }
    fit.r_squared = 1 - ss_res / ss_tot;
  } else {
    fit.r_squared = 1;  // constant y fits exactly
  }
  return fit;
}

LinearFit fit_loglog(std::span<const Real> xs, std::span<const Real> ys) {
  PSDP_CHECK(xs.size() == ys.size(), "fit_loglog: size mismatch");
  std::vector<Real> lx(xs.size());
  std::vector<Real> ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    PSDP_CHECK(xs[i] > 0 && ys[i] > 0, "fit_loglog: data must be positive");
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  return fit_line(lx, ly);
}

Real median(std::vector<Real> xs) {
  PSDP_CHECK(!xs.empty(), "median of empty sample");
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  if (n % 2 == 1) return xs[n / 2];
  return (xs[n / 2 - 1] + xs[n / 2]) / 2;
}

}  // namespace psdp::util
