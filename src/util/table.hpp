// Aligned-column table printer. The bench harness uses it so every
// experiment prints rows in the same shape the paper's claims are stated in
// ("n, iterations, bound, ratio").
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace psdp::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row. Cells are already-formatted strings; use cell() helpers
  /// for numbers. Row width must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Render with padded columns, a header underline, and two-space gutters.
  void print(std::ostream& out = std::cout) const;

  /// Format helpers.
  static std::string cell(Real value, int precision = 4);
  static std::string cell(Index value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace psdp::util
