#include "io/chunked.hpp"

#include <cstring>
#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define PSDP_CHUNKED_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define PSDP_CHUNKED_HAVE_MMAP 0
#endif

namespace psdp::io {

namespace {

// Fixed-width header: magic + version + the four i64 dimensions.
constexpr std::uint64_t kHeaderBytes = 8 + 8 + 4 * 8;
constexpr std::uint64_t kShardRecordBytes = 5 * 8;

std::uint64_t fnv1a(const unsigned char* data, std::uint64_t size) {
  std::uint64_t hash = 1469598103934665603ull;
  for (std::uint64_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

void put_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_i64(std::ostream& out, Index v) {
  static_assert(sizeof(Index) == 8);
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Sequential parser over one shard's payload bytes with hard bounds
/// checks: any record running past the shard's declared byte size is a torn
/// shard, reported by name rather than read out of bounds.
struct PayloadCursor {
  const unsigned char* data;
  std::uint64_t size;
  std::uint64_t pos = 0;
  Index shard;

  void need(std::uint64_t bytes) {
    PSDP_CHECK(bytes <= size - pos,
               str("chunked: torn shard ", shard, " (record at byte ", pos,
                   " runs past the shard's ", size, " payload bytes)"));
  }
  Index take_i64() {
    need(8);
    Index v;
    std::memcpy(&v, data + pos, 8);
    pos += 8;
    return v;
  }
  template <typename T>
  void take_array(std::vector<T>& out, std::uint64_t count) {
    static_assert(sizeof(T) == 8);
    // Guard the multiply itself: a corrupt count this large is a torn
    // shard, not an overflow-wrapped small read.
    PSDP_CHECK(count <= (size - pos) / 8,
               str("chunked: torn shard ", shard, " (array of ", count,
                   " 8-byte elements at byte ", pos, " runs past the ",
                   size, " payload bytes)"));
    out.resize(static_cast<std::size_t>(count));
    std::memcpy(out.data(), data + pos, count * 8);
    pos += count * 8;
  }
};

}  // namespace

void save_factorized_chunked(const std::string& path,
                             const core::FactorizedPackingInstance& instance,
                             Index shards) {
  PSDP_CHECK(shards >= 0, "chunked: shard count must be non-negative");
  const std::vector<Index> offsets =
      shards == 0
          ? std::vector<Index>(instance.sharded().shard_offsets().begin(),
                               instance.sharded().shard_offsets().end())
          : sparse::ShardedFactorizedSet::partition_offsets(instance.set(),
                                                            shards);
  const Index k_shards = static_cast<Index>(offsets.size()) - 1;
  const Index dim = instance.dim();

  std::ofstream out(path, std::ios::binary);
  PSDP_CHECK(out.good(), str("chunked: cannot open '", path, "' for writing"));

  out.write(kChunkedMagic, sizeof(kChunkedMagic));
  put_u64(out, kChunkedVersion);
  put_i64(out, dim);
  put_i64(out, instance.size());
  put_i64(out, k_shards);
  put_i64(out, instance.total_nnz());

  // Shard blocks are serialized into memory one at a time, streamed to the
  // file, and dropped -- the writer's high-water is one shard, mirroring
  // the reader. The table precedes the payload, so it goes out first as
  // zeros and is back-patched with the final offsets and checksums once
  // every block has been sized in the single forward pass.
  const std::uint64_t payload_start =
      kHeaderBytes + static_cast<std::uint64_t>(k_shards) * kShardRecordBytes;
  std::vector<ChunkedShardInfo> table(static_cast<std::size_t>(k_shards));
  {
    const std::vector<char> zeros(kShardRecordBytes, 0);
    for (Index k = 0; k < k_shards; ++k) {
      out.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
    }
  }
  std::uint64_t offset = payload_start;
  std::string block;
  for (Index k = 0; k < k_shards; ++k) {
    const Index begin = offsets[static_cast<std::size_t>(k)];
    const Index end = offsets[static_cast<std::size_t>(k) + 1];
    block.clear();
    for (Index i = begin; i < end; ++i) {
      const sparse::Csr& q = instance[i].q();
      PSDP_CHECK(q.rows() == dim,
                 str("chunked: constraint ", i, " dimension mismatch"));
      const auto append = [&block](const void* data, std::size_t bytes) {
        block.append(static_cast<const char*>(data), bytes);
      };
      const Index cols = q.cols();
      const Index nnz = q.nnz();
      append(&cols, 8);
      append(&nnz, 8);
      append(q.row_offsets().data(), (static_cast<std::size_t>(dim) + 1) * 8);
      append(q.col_indices().data(), static_cast<std::size_t>(nnz) * 8);
      append(q.values().data(), static_cast<std::size_t>(nnz) * 8);
    }
    ChunkedShardInfo& info = table[static_cast<std::size_t>(k)];
    info.constraint_begin = begin;
    info.constraint_end = end;
    info.byte_offset = offset;
    info.byte_size = block.size();
    info.checksum =
        fnv1a(reinterpret_cast<const unsigned char*>(block.data()),
              block.size());
    offset += block.size();
    out.write(block.data(), static_cast<std::streamsize>(block.size()));
  }
  out.seekp(static_cast<std::streamoff>(kHeaderBytes));
  for (const ChunkedShardInfo& info : table) {
    put_i64(out, info.constraint_begin);
    put_i64(out, info.constraint_end);
    put_u64(out, info.byte_offset);
    put_u64(out, info.byte_size);
    put_u64(out, info.checksum);
  }
  PSDP_CHECK(out.good(), str("chunked: write to '", path, "' failed"));
}

ChunkedInstanceReader::ChunkedInstanceReader(const std::string& path,
                                             const ChunkedLoadOptions& options)
    : path_(path), options_(options) {
  // Header + shard table via buffered reads (tiny); the payload backend is
  // chosen afterwards.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  PSDP_CHECK(in.good(), str("chunked: cannot open '", path, "'"));
  file_size_ = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);

  PSDP_CHECK(file_size_ >= kHeaderBytes,
             str("chunked: truncated header in '", path, "' (", file_size_,
                 " bytes, header needs ", kHeaderBytes, ")"));
  char magic[8];
  in.read(magic, sizeof(magic));
  PSDP_CHECK(std::memcmp(magic, kChunkedMagic, sizeof(magic)) == 0,
             str("chunked: bad magic in '", path,
                 "' (not a chunked instance file)"));
  std::uint64_t version = 0;
  in.read(reinterpret_cast<char*>(&version), 8);
  PSDP_CHECK(version == kChunkedVersion,
             str("chunked: version mismatch in '", path, "' (file has ",
                 version, ", reader supports ", kChunkedVersion, ")"));
  Index n_shards = 0;
  in.read(reinterpret_cast<char*>(&dim_), 8);
  in.read(reinterpret_cast<char*>(&n_constraints_), 8);
  in.read(reinterpret_cast<char*>(&n_shards), 8);
  in.read(reinterpret_cast<char*>(&total_nnz_), 8);
  PSDP_CHECK(in.good() && dim_ >= 1 && n_constraints_ >= 1 && n_shards >= 1 &&
                 n_shards <= n_constraints_ && total_nnz_ >= 0,
             str("chunked: malformed header in '", path, "'"));

  const std::uint64_t table_bytes =
      static_cast<std::uint64_t>(n_shards) * kShardRecordBytes;
  PSDP_CHECK(file_size_ >= kHeaderBytes + table_bytes,
             str("chunked: truncated header in '", path,
                 "' (shard table runs past end of file)"));
  shards_.resize(static_cast<std::size_t>(n_shards));
  Index expected_begin = 0;
  for (Index k = 0; k < n_shards; ++k) {
    ChunkedShardInfo& info = shards_[static_cast<std::size_t>(k)];
    in.read(reinterpret_cast<char*>(&info.constraint_begin), 8);
    in.read(reinterpret_cast<char*>(&info.constraint_end), 8);
    in.read(reinterpret_cast<char*>(&info.byte_offset), 8);
    in.read(reinterpret_cast<char*>(&info.byte_size), 8);
    in.read(reinterpret_cast<char*>(&info.checksum), 8);
    PSDP_CHECK(in.good(), str("chunked: truncated shard table in '", path,
                              "' (shard ", k, ")"));
    PSDP_CHECK(info.constraint_begin == expected_begin &&
                   info.constraint_end > info.constraint_begin,
               str("chunked: malformed shard table in '", path, "' (shard ",
                   k, " covers [", info.constraint_begin, ", ",
                   info.constraint_end, "))"));
    expected_begin = info.constraint_end;
    PSDP_CHECK(info.byte_offset >= kHeaderBytes + table_bytes &&
                   info.byte_size <= file_size_ &&
                   info.byte_offset <= file_size_ - info.byte_size,
               str("chunked: torn shard ", k, " in '", path,
                   "' (payload [", info.byte_offset, ", +", info.byte_size,
                   ") runs past the ", file_size_, "-byte file)"));
  }
  PSDP_CHECK(expected_begin == n_constraints_,
             str("chunked: malformed shard table in '", path,
                 "' (shards cover ", expected_begin, " of ", n_constraints_,
                 " constraints)"));
  in.close();

#if PSDP_CHUNKED_HAVE_MMAP
  if (options_.use_mmap && file_size_ > 0) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      void* base = ::mmap(nullptr, static_cast<std::size_t>(file_size_),
                          PROT_READ, MAP_PRIVATE, fd, 0);
      if (base != MAP_FAILED) {
        fd_ = fd;
        map_base_ = static_cast<const unsigned char*>(base);
        map_size_ = file_size_;
      } else {
        ::close(fd);  // silent fallback to buffered reads
      }
    }
  }
#endif
}

ChunkedInstanceReader::~ChunkedInstanceReader() {
#if PSDP_CHUNKED_HAVE_MMAP
  if (map_base_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(map_base_),
             static_cast<std::size_t>(map_size_));
  }
  if (fd_ >= 0) ::close(fd_);
#endif
}

const ChunkedShardInfo& ChunkedInstanceReader::shard_info(Index k) const {
  PSDP_CHECK(k >= 0 && k < shard_count(),
             "chunked: shard index out of range");
  return shards_[static_cast<std::size_t>(k)];
}

const unsigned char* ChunkedInstanceReader::shard_bytes(
    Index k, std::vector<unsigned char>& scratch) const {
  const ChunkedShardInfo& info = shard_info(k);
  if (map_base_ != nullptr) return map_base_ + info.byte_offset;
  std::ifstream in(path_, std::ios::binary);
  PSDP_CHECK(in.good(), str("chunked: cannot reopen '", path_, "'"));
  in.seekg(static_cast<std::streamoff>(info.byte_offset));
  scratch.resize(static_cast<std::size_t>(info.byte_size));
  in.read(reinterpret_cast<char*>(scratch.data()),
          static_cast<std::streamsize>(info.byte_size));
  PSDP_CHECK(in.good(),
             str("chunked: torn shard ", k, " in '", path_, "' (read of ",
                 info.byte_size, " payload bytes failed)"));
  return scratch.data();
}

std::vector<sparse::FactorizedPsd> ChunkedInstanceReader::load_shard(
    Index k) const {
  const ChunkedShardInfo& info = shard_info(k);
  std::vector<unsigned char> scratch;
  const unsigned char* bytes = shard_bytes(k, scratch);
  if (options_.verify_checksums) {
    const std::uint64_t got = fnv1a(bytes, info.byte_size);
    PSDP_CHECK(got == info.checksum,
               str("chunked: checksum mismatch in shard ", k, " of '", path_,
                   "' (stored ", info.checksum, ", computed ", got, ")"));
  }
  PayloadCursor cursor{bytes, info.byte_size, 0, k};
  std::vector<sparse::FactorizedPsd> items;
  items.reserve(
      static_cast<std::size_t>(info.constraint_end - info.constraint_begin));
  std::vector<Index> row_offsets;
  std::vector<Index> col_indices;
  std::vector<Real> values;
  for (Index i = info.constraint_begin; i < info.constraint_end; ++i) {
    const Index cols = cursor.take_i64();
    const Index nnz = cursor.take_i64();
    PSDP_CHECK(cols >= 1 && nnz >= 0,
               str("chunked: malformed constraint ", i, " in shard ", k,
                   " of '", path_, "'"));
    cursor.take_array(row_offsets, static_cast<std::uint64_t>(dim_) + 1);
    cursor.take_array(col_indices, static_cast<std::uint64_t>(nnz));
    cursor.take_array(values, static_cast<std::uint64_t>(nnz));
    // from_parts adopts the arrays verbatim (no re-sort, no merge) and
    // validates the CSR invariants, so a corrupted-but-checksum-passing
    // block still cannot smuggle malformed structure in.
    items.emplace_back(
        sparse::Csr::from_parts(dim_, cols, std::move(row_offsets),
                                std::move(col_indices), std::move(values)),
        options_.plan_options);
    row_offsets.clear();
    col_indices.clear();
    values.clear();
  }
  PSDP_CHECK(cursor.pos == cursor.size,
             str("chunked: torn shard ", k, " of '", path_, "' (",
                 cursor.size - cursor.pos, " trailing payload bytes)"));
#if PSDP_CHUNKED_HAVE_MMAP
  if (map_base_ != nullptr && options_.release_loaded_pages) {
    // Once the shard is parsed into owned CSR arrays its raw bytes are dead
    // weight: drop the (clean, read-only) pages so the mapping's resident
    // set stays one-shard-bounded over a full-file load. A later reload of
    // the same shard simply re-faults from the file.
    const std::uint64_t page = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
    const std::uint64_t begin = (info.byte_offset / page) * page;
    const std::uint64_t end = info.byte_offset + info.byte_size;
    ::madvise(const_cast<unsigned char*>(map_base_ + begin),
              static_cast<std::size_t>(end - begin), MADV_DONTNEED);
  }
#endif
  return items;
}

core::FactorizedPackingInstance ChunkedInstanceReader::load_all(
    Index shards) const {
  std::vector<sparse::FactorizedPsd> items;
  items.reserve(static_cast<std::size_t>(n_constraints_));
  std::vector<Index> offsets;
  offsets.reserve(shards_.size() + 1);
  offsets.push_back(0);
  for (Index k = 0; k < shard_count(); ++k) {
    std::vector<sparse::FactorizedPsd> shard = load_shard(k);
    for (auto& item : shard) items.push_back(std::move(item));
    offsets.push_back(static_cast<Index>(items.size()));
  }
  if (shards > 0) {
    // Caller-requested partition: re-cut instead of keeping the file's
    // boundaries (shards = 1 collapses to the legacy unsharded instance).
    return core::FactorizedPackingInstance(
        sparse::FactorizedSet(std::move(items)), shards,
        options_.plan_options);
  }
  return core::FactorizedPackingInstance(sparse::ShardedFactorizedSet(
      sparse::FactorizedSet(std::move(items)), std::move(offsets),
      options_.plan_options));
}

core::FactorizedPackingInstance load_factorized_chunked(
    const std::string& path, const ChunkedLoadOptions& options, Index shards) {
  return ChunkedInstanceReader(path, options).load_all(shards);
}

bool is_chunked_instance_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  char magic[sizeof(kChunkedMagic)] = {};
  in.read(magic, sizeof(magic));
  return in.gcount() == static_cast<std::streamsize>(sizeof(magic)) &&
         std::memcmp(magic, kChunkedMagic, sizeof(magic)) == 0;
}

}  // namespace psdp::io
