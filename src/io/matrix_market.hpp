// MatrixMarket (MM) interchange format support.
//
// Instances often originate in other tools (graph collections, SDP
// benchmark suites) that speak MatrixMarket; this module reads and writes
// the two layouts the library uses:
//
//   * coordinate real general/symmetric  <->  sparse::Csr
//   * array real general/symmetric       <->  linalg::Matrix (dense)
//
// Writers always emit "general" for rectangular data and "symmetric" (lower
// triangle) for symmetric square input when asked. Readers accept both and
// expand symmetric storage. Pattern, complex and integer fields are
// rejected with a clear error; integer data can be read as real by most
// producers' own tooling.
//
// Duplicate-entry policy (coordinate format): repeated listings of the same
// (row, col) position SUM, the conventional MM semantics (what scipy's
// mmread does) -- this holds for both the sparse and the dense reader.
// In symmetric files, (r,c) and (c,r) name the same logical entry: entries
// are canonicalized to the lower triangle before the merge, so either
// triangle (or a redundant mix) is accepted, duplicates of an unordered
// pair sum, and each merged entry is mirrored exactly once. (The NIST spec
// says lower-triangle-only; canonicalization keeps the common
// upper-triangle deviation loading while removing the old reader's
// mirror-per-listing behavior, which was what made redundant pairs
// surprising.)
//
// Conventions follow the NIST specification: 1-based indices, '%' comment
// lines, a blank-line-free body. Values round-trip at 17 significant
// digits.
#pragma once

#include <iosfwd>
#include <string>

#include "linalg/matrix.hpp"
#include "sparse/csr.hpp"

namespace psdp::io {

/// Write a sparse matrix in coordinate format. When `symmetric` is true the
/// matrix must be square and symmetric (checked against its dense pattern);
/// only the lower triangle is emitted.
void write_matrix_market(std::ostream& out, const sparse::Csr& matrix,
                         bool symmetric = false);

/// Write a dense matrix in array format (column-major body, per the spec).
void write_matrix_market(std::ostream& out, const linalg::Matrix& matrix,
                         bool symmetric = false);

/// Read a coordinate-format MatrixMarket stream into CSR. Duplicate entries
/// sum; symmetric storage (either triangle, canonicalized -- see the header
/// comment for the policy) is expanded to full storage. Throws
/// InvalidArgument on malformed input or an unsupported field/format
/// combination.
sparse::Csr read_matrix_market_sparse(std::istream& in);

/// Knobs of the streaming coordinate reader.
struct StreamingMmOptions {
  /// Entries buffered before each sort-and-merge flush. This bounds the
  /// reader's working memory beyond the output itself: peak resident is
  /// O(distinct nnz + staging_capacity), independent of how many listings
  /// (duplicates, redundant symmetric pairs) the file carries.
  Index staging_capacity = 1 << 20;
};

/// Streaming variant of read_matrix_market_sparse for files whose listing
/// count dwarfs memory: one pass over the stream, a bounded staging buffer
/// (sorted and merged into the accumulated matrix each time it fills), and
/// no materialized whole-file triplet vector -- the in-RAM reader buffers
/// every listing (with symmetric mirrors, twice) before sorting. Applies
/// the identical duplicates-sum + lower-triangle canonicalization policy:
/// symmetric entries canonicalize during the scan, unordered-pair
/// duplicates sum (in listing order), and each merged entry is mirrored
/// exactly once at assembly. On exactly-representable inputs the result is
/// bit-identical to the in-RAM reader (locked by tests); otherwise the two
/// differ only by duplicate-summation rounding order. Coordinate format
/// only -- array files raise InvalidArgument (dense data has no streaming
/// story).
sparse::Csr read_matrix_market_sparse_streaming(
    std::istream& in, const StreamingMmOptions& options = {});

/// Read an array-format (dense) MatrixMarket stream. Coordinate files are
/// also accepted and densified, under the same duplicates-sum policy as the
/// sparse reader.
linalg::Matrix read_matrix_market_dense(std::istream& in);

/// File convenience wrappers.
void save_matrix_market(const std::string& path, const sparse::Csr& matrix,
                        bool symmetric = false);
void save_matrix_market(const std::string& path, const linalg::Matrix& matrix,
                        bool symmetric = false);
sparse::Csr load_matrix_market_sparse(const std::string& path);
sparse::Csr load_matrix_market_sparse_streaming(
    const std::string& path, const StreamingMmOptions& options = {});
linalg::Matrix load_matrix_market_dense(const std::string& path);

}  // namespace psdp::io
