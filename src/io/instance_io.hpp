// Plain-text serialization of problem instances.
//
// A small line-oriented format so experiments are reproducible across runs
// and instances can be shipped to other tools. All three problem kinds are
// supported; matrices are stored as upper-triangle triplets (dense) or as
// factor triplets (factorized). Values round-trip exactly (hex-free, 17
// significant digits).
//
// Grammar (one record per line, '#' starts a comment):
//   psdp <kind> 1                       header; kind in {packing-dense,
//                                       packing-factorized, covering,
//                                       packing-lp}
//   size <n> <m>                        (packing-lp: <rows l> <cols n>)
//   constraint <i> <nnz>                then nnz lines "r c v" (r <= c for
//                                       dense symmetric; any r,c for factors)
//   objective <nnz>                     covering only
//   rhs <b_0> ... <b_{n-1}>             covering only
//   matrix <nnz>                        packing-lp only; lines "j i v"
#pragma once

#include <iosfwd>
#include <string>

#include "core/instance.hpp"
#include "core/poslp.hpp"

namespace psdp::io {

/// Writers.
void write_packing(std::ostream& out, const core::PackingInstance& instance);
void write_factorized(std::ostream& out,
                      const core::FactorizedPackingInstance& instance);
void write_covering(std::ostream& out, const core::CoveringProblem& problem);
void write_lp(std::ostream& out, const core::PackingLp& lp);

/// Readers; throw InvalidArgument on malformed input. The factorized reader
/// builds each factor's transpose index (tall factors) under `plan_options`,
/// so a caller owning a TransposePlanCache -- the serve layer's
/// ArtifactCache -- can route the plan memoization of loaded instances into
/// it (sparse::AutotuneOptions::plan_cache); the default is the process-wide
/// cache, exactly as before.
core::PackingInstance read_packing(std::istream& in);
/// `shards` > 1 cuts the loaded constraints into that many nnz-balanced
/// contiguous partitions (the out-of-core oracle sweep granularity); 0 or 1
/// keeps the legacy unsharded instance.
core::FactorizedPackingInstance read_factorized(
    std::istream& in, const sparse::TransposePlanOptions& plan_options = {},
    Index shards = 0);
core::CoveringProblem read_covering(std::istream& in);
core::PackingLp read_lp(std::istream& in);

/// File convenience wrappers.
void save_packing(const std::string& path, const core::PackingInstance& instance);
core::PackingInstance load_packing(const std::string& path);
void save_factorized(const std::string& path,
                     const core::FactorizedPackingInstance& instance);
core::FactorizedPackingInstance load_factorized(
    const std::string& path,
    const sparse::TransposePlanOptions& plan_options = {}, Index shards = 0);
void save_covering(const std::string& path, const core::CoveringProblem& problem);
core::CoveringProblem load_covering(const std::string& path);
void save_lp(const std::string& path, const core::PackingLp& lp);
core::PackingLp load_lp(const std::string& path);

}  // namespace psdp::io
