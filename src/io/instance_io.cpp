#include "io/instance_io.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace psdp::io {

using core::CoveringProblem;
using core::FactorizedPackingInstance;
using core::PackingInstance;
using linalg::Matrix;
using linalg::Vector;

namespace {

constexpr int kPrecision = 17;

void write_header(std::ostream& out, const char* kind) {
  out << "psdp " << kind << " 1\n";
}

void write_dense_symmetric(std::ostream& out, const Matrix& a) {
  // Count upper-triangle nonzeros first.
  Index nnz = 0;
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = i; j < a.cols(); ++j) {
      if (a(i, j) != 0) ++nnz;
    }
  }
  out << nnz << "\n";
  out << std::setprecision(kPrecision);
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = i; j < a.cols(); ++j) {
      if (a(i, j) != 0) out << i << " " << j << " " << a(i, j) << "\n";
    }
  }
}

/// Next non-comment, non-blank line.
bool next_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos) continue;
    if (line[pos] == '#') continue;
    return true;
  }
  return false;
}

std::istringstream expect_line(std::istream& in, const char* what) {
  std::string line;
  PSDP_CHECK(next_line(in, line), str("unexpected end of input, expected ", what));
  return std::istringstream(line);
}

void expect_header(std::istream& in, const std::string& kind) {
  auto line = expect_line(in, "header");
  std::string magic, got_kind;
  int version = 0;
  line >> magic >> got_kind >> version;
  PSDP_CHECK(magic == "psdp", "not a psdp instance file");
  PSDP_CHECK(got_kind == kind,
             str("expected kind '", kind, "', found '", got_kind, "'"));
  PSDP_CHECK(version == 1, str("unsupported format version ", version));
}

std::pair<Index, Index> read_size(std::istream& in) {
  auto line = expect_line(in, "size");
  std::string tag;
  Index n = 0, m = 0;
  line >> tag >> n >> m;
  PSDP_CHECK(tag == "size" && n >= 1 && m >= 1, "malformed size record");
  return {n, m};
}

Matrix read_dense_symmetric(std::istream& in, Index m, Index expected_index) {
  auto header = expect_line(in, "constraint");
  std::string tag;
  Index idx = 0, nnz = 0;
  header >> tag >> idx >> nnz;
  PSDP_CHECK(tag == "constraint" && idx == expected_index && nnz >= 0,
             str("malformed constraint record (index ", expected_index, ")"));
  Matrix a(m, m);
  for (Index k = 0; k < nnz; ++k) {
    auto entry = expect_line(in, "matrix entry");
    Index i = 0, j = 0;
    Real v = 0;
    entry >> i >> j >> v;
    PSDP_CHECK(entry && i >= 0 && j >= i && j < m && std::isfinite(v),
               "malformed matrix entry");
    a(i, j) = v;
    a(j, i) = v;
  }
  return a;
}

}  // namespace

void write_packing(std::ostream& out, const PackingInstance& instance) {
  write_header(out, "packing-dense");
  out << "size " << instance.size() << " " << instance.dim() << "\n";
  for (Index i = 0; i < instance.size(); ++i) {
    out << "constraint " << i << " ";
    write_dense_symmetric(out, instance[i]);
  }
}

PackingInstance read_packing(std::istream& in) {
  expect_header(in, "packing-dense");
  const auto [n, m] = read_size(in);
  std::vector<Matrix> constraints;
  constraints.reserve(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    constraints.push_back(read_dense_symmetric(in, m, i));
  }
  return PackingInstance(std::move(constraints));
}

void write_factorized(std::ostream& out,
                      const FactorizedPackingInstance& instance) {
  write_header(out, "packing-factorized");
  out << "size " << instance.size() << " " << instance.dim() << "\n";
  out << std::setprecision(kPrecision);
  for (Index i = 0; i < instance.size(); ++i) {
    const sparse::Csr& q = instance[i].q();
    out << "constraint " << i << " " << q.cols() << " " << q.nnz() << "\n";
    for (Index r = 0; r < q.rows(); ++r) {
      const auto cols = q.row_cols(r);
      const auto vals = q.row_vals(r);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        out << r << " " << cols[k] << " " << vals[k] << "\n";
      }
    }
  }
}

FactorizedPackingInstance read_factorized(
    std::istream& in, const sparse::TransposePlanOptions& plan_options,
    Index shards) {
  expect_header(in, "packing-factorized");
  const auto [n, m] = read_size(in);
  std::vector<sparse::FactorizedPsd> items;
  items.reserve(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    auto header = expect_line(in, "constraint");
    std::string tag;
    Index idx = 0, cols = 0, nnz = 0;
    header >> tag >> idx >> cols >> nnz;
    PSDP_CHECK(tag == "constraint" && idx == i && cols >= 1 && nnz >= 0,
               str("malformed factorized constraint record (index ", i, ")"));
    std::vector<sparse::Triplet> triplets;
    triplets.reserve(static_cast<std::size_t>(nnz));
    for (Index k = 0; k < nnz; ++k) {
      auto entry = expect_line(in, "factor entry");
      Index r = 0, c = 0;
      Real v = 0;
      entry >> r >> c >> v;
      PSDP_CHECK(entry && r >= 0 && r < m && c >= 0 && c < cols &&
                     std::isfinite(v),
                 "malformed factor entry");
      triplets.push_back({r, c, v});
    }
    items.emplace_back(sparse::Csr::from_triplets(m, cols, std::move(triplets)),
                       plan_options);
  }
  if (shards > 1) {
    return FactorizedPackingInstance(sparse::FactorizedSet(std::move(items)),
                                     shards, plan_options);
  }
  return FactorizedPackingInstance(sparse::FactorizedSet(std::move(items)));
}

void write_covering(std::ostream& out, const CoveringProblem& problem) {
  write_header(out, "covering");
  out << "size " << problem.size() << " " << problem.dim() << "\n";
  out << "objective ";
  write_dense_symmetric(out, problem.objective);
  out << std::setprecision(kPrecision) << "rhs";
  for (Index i = 0; i < problem.rhs.size(); ++i) out << " " << problem.rhs[i];
  out << "\n";
  for (Index i = 0; i < problem.size(); ++i) {
    out << "constraint " << i << " ";
    write_dense_symmetric(out, problem.constraints[static_cast<std::size_t>(i)]);
  }
}

CoveringProblem read_covering(std::istream& in) {
  expect_header(in, "covering");
  const auto [n, m] = read_size(in);
  CoveringProblem problem;
  {
    auto header = expect_line(in, "objective");
    std::string tag;
    Index nnz = 0;
    header >> tag >> nnz;
    PSDP_CHECK(tag == "objective" && nnz >= 0, "malformed objective record");
    problem.objective = Matrix(m, m);
    for (Index k = 0; k < nnz; ++k) {
      auto entry = expect_line(in, "objective entry");
      Index i = 0, j = 0;
      Real v = 0;
      entry >> i >> j >> v;
      PSDP_CHECK(entry && i >= 0 && j >= i && j < m && std::isfinite(v),
                 "malformed objective entry");
      problem.objective(i, j) = v;
      problem.objective(j, i) = v;
    }
  }
  {
    auto line = expect_line(in, "rhs");
    std::string tag;
    line >> tag;
    PSDP_CHECK(tag == "rhs", "malformed rhs record");
    problem.rhs = Vector(n);
    for (Index i = 0; i < n; ++i) {
      PSDP_CHECK(static_cast<bool>(line >> problem.rhs[i]),
                 "rhs record too short");
    }
  }
  for (Index i = 0; i < n; ++i) {
    problem.constraints.push_back(read_dense_symmetric(in, m, i));
  }
  return problem;
}

namespace {

template <typename Writer, typename T>
void save(const std::string& path, const T& value, Writer writer) {
  std::ofstream out(path);
  PSDP_CHECK(out.good(), str("cannot open '", path, "' for writing"));
  writer(out, value);
  PSDP_CHECK(out.good(), str("write to '", path, "' failed"));
}

template <typename Reader>
auto load(const std::string& path, Reader reader) {
  std::ifstream in(path);
  PSDP_CHECK(in.good(), str("cannot open '", path, "' for reading"));
  return reader(in);
}

}  // namespace

void write_lp(std::ostream& out, const core::PackingLp& lp) {
  write_header(out, "packing-lp");
  const Matrix& p = lp.matrix();
  Index nnz = 0;
  for (Index j = 0; j < p.rows(); ++j) {
    for (Index i = 0; i < p.cols(); ++i) {
      if (p(j, i) != 0) ++nnz;
    }
  }
  // size records rows (constraints) then cols (variables).
  out << "size " << p.rows() << " " << p.cols() << "\n";
  out << "matrix " << nnz << "\n" << std::setprecision(kPrecision);
  for (Index j = 0; j < p.rows(); ++j) {
    for (Index i = 0; i < p.cols(); ++i) {
      if (p(j, i) != 0) out << j << " " << i << " " << p(j, i) << "\n";
    }
  }
}

core::PackingLp read_lp(std::istream& in) {
  expect_header(in, "packing-lp");
  const auto [l, n] = read_size(in);
  auto header = expect_line(in, "matrix");
  std::string tag;
  Index nnz = 0;
  header >> tag >> nnz;
  PSDP_CHECK(tag == "matrix" && nnz >= 0, "malformed matrix record");
  Matrix p(l, n);
  for (Index k = 0; k < nnz; ++k) {
    auto entry = expect_line(in, "lp entry");
    Index j = 0, i = 0;
    Real v = 0;
    entry >> j >> i >> v;
    PSDP_CHECK(entry && j >= 0 && j < l && i >= 0 && i < n && v >= 0 &&
                   std::isfinite(v),
               "malformed lp entry");
    p(j, i) = v;
  }
  return core::PackingLp(std::move(p));
}

void save_packing(const std::string& path, const PackingInstance& instance) {
  save(path, instance, [](std::ostream& o, const PackingInstance& v) {
    write_packing(o, v);
  });
}

PackingInstance load_packing(const std::string& path) {
  return load(path, [](std::istream& i) { return read_packing(i); });
}

void save_factorized(const std::string& path,
                     const FactorizedPackingInstance& instance) {
  save(path, instance,
       [](std::ostream& o, const FactorizedPackingInstance& v) {
         write_factorized(o, v);
       });
}

FactorizedPackingInstance load_factorized(
    const std::string& path, const sparse::TransposePlanOptions& plan_options,
    Index shards) {
  return load(path, [&plan_options, shards](std::istream& i) {
    return read_factorized(i, plan_options, shards);
  });
}

void save_lp(const std::string& path, const core::PackingLp& lp) {
  save(path, lp,
       [](std::ostream& o, const core::PackingLp& v) { write_lp(o, v); });
}

core::PackingLp load_lp(const std::string& path) {
  return load(path, [](std::istream& i) { return read_lp(i); });
}

void save_covering(const std::string& path, const CoveringProblem& problem) {
  save(path, problem, [](std::ostream& o, const CoveringProblem& v) {
    write_covering(o, v);
  });
}

CoveringProblem load_covering(const std::string& path) {
  return load(path, [](std::istream& i) { return read_covering(i); });
}

}  // namespace psdp::io
