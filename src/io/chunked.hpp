// Chunked binary instance format: the on-disk shape of the out-of-core
// pipeline.
//
// A chunked file stores a factorized packing instance as K contiguous
// constraint shards, each a self-contained block of canonical CSR arrays
// (row offsets / column indices / values, serialized verbatim), preceded by
// a fixed header and a shard table of byte offsets, sizes, constraint
// ranges and FNV-1a checksums. The reader therefore never re-sorts or
// re-merges anything -- each factor is adopted through Csr::from_parts --
// and can load one shard at a time: the resident set while loading is one
// shard's arrays plus the constraints already built, never a monolithic
// triplet buffer (bench_shard measures the high-water).
//
// Layout (native-endian, i64/u64/f64 fields; offsets from file start):
//   magic   "PSDPCHK1"                      8 bytes
//   u64     version (currently 1)
//   i64     dim, n_constraints, n_shards, total_nnz
//   shard table, n_shards records:
//     i64   constraint_begin, constraint_end
//     u64   byte_offset, byte_size          payload block of this shard
//     u64   checksum                        FNV-1a 64 over the payload bytes
//   payload blocks, one per shard, each a sequence of constraint records:
//     i64   factor_cols, factor_nnz
//     i64   row_offsets[dim + 1]
//     i64   col_indices[factor_nnz]
//     f64   values[factor_nnz]
//
// Every malformed-file condition -- truncated header, bad magic, version
// mismatch, torn (truncated or out-of-bounds) shard, checksum mismatch,
// inconsistent structure -- throws a named psdp::InvalidArgument; the fault
// suite in tests/test_chunked.cpp drives each one under the sanitizers.
//
// The reader backend is mmap when the platform provides it (pages stream
// in on demand and drop under pressure -- the bigger-than-RAM load path),
// falling back to plain buffered reads; ChunkedLoadOptions::use_mmap and
// ChunkedInstanceReader::mapped() control and report the choice. Both
// backends produce identical instances (locked by tests).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.hpp"

namespace psdp::io {

inline constexpr char kChunkedMagic[8] = {'P', 'S', 'D', 'P',
                                          'C', 'H', 'K', '1'};
inline constexpr std::uint64_t kChunkedVersion = 1;

struct ChunkedLoadOptions {
  /// Map the file instead of reading it (falls back to reads silently when
  /// mmap is unavailable or fails).
  bool use_mmap = true;
  /// Verify each shard's FNV-1a checksum before parsing it. Costs one pass
  /// over the payload bytes; off only for benchmarking the parse itself.
  bool verify_checksums = true;
  /// mmap backend only: drop a shard's (clean, file-backed) pages with
  /// madvise(MADV_DONTNEED) once it has been parsed, so the resident set of
  /// a full-file load stays bounded by one shard rather than the whole
  /// payload. Reloading a shard re-faults its pages from the file.
  bool release_loaded_pages = true;
  /// Transpose-plan options for the factors built from the file (the serve
  /// layer routes its ArtifactCache-owned plan cache through here).
  sparse::TransposePlanOptions plan_options;
};

/// One shard-table entry, as stored.
struct ChunkedShardInfo {
  Index constraint_begin = 0;
  Index constraint_end = 0;
  std::uint64_t byte_offset = 0;
  std::uint64_t byte_size = 0;
  std::uint64_t checksum = 0;
};

/// Write `instance` as a chunked file with `shards` nnz-balanced shard
/// blocks. shards = 0 keeps the instance's own partition (whatever
/// shard_count() it already carries); otherwise the boundaries are
/// recomputed via ShardedFactorizedSet::partition_offsets, so writing never
/// mutates or re-indexes the instance.
void save_factorized_chunked(const std::string& path,
                             const core::FactorizedPackingInstance& instance,
                             Index shards = 0);

/// Shard-at-a-time reader over a chunked file. Construction parses and
/// validates the header and shard table only; payload bytes are touched
/// when a shard is loaded (and checksummed then, under the default
/// options). The reader owns the mapping / file handle; shards may be
/// loaded in any order and repeatedly.
class ChunkedInstanceReader {
 public:
  explicit ChunkedInstanceReader(const std::string& path,
                                 const ChunkedLoadOptions& options = {});
  ~ChunkedInstanceReader();
  ChunkedInstanceReader(const ChunkedInstanceReader&) = delete;
  ChunkedInstanceReader& operator=(const ChunkedInstanceReader&) = delete;

  Index dim() const { return dim_; }
  Index size() const { return n_constraints_; }
  Index shard_count() const { return static_cast<Index>(shards_.size()); }
  Index total_nnz() const { return total_nnz_; }
  const ChunkedShardInfo& shard_info(Index k) const;
  /// True when the mmap backend is active (false = buffered reads).
  bool mapped() const { return map_base_ != nullptr; }

  /// Parse shard k's constraints (transpose indexes built per the load
  /// options' plan_options and the usual aspect gate; the sharded set
  /// forces the rest when K > 1).
  std::vector<sparse::FactorizedPsd> load_shard(Index k) const;

  /// Load every shard in order and assemble the instance around the stored
  /// shard boundaries (a file with one shard yields the legacy unsharded
  /// instance, bit-identical to the text-format loader's output for the
  /// same data). `shards` > 0 overrides the stored partition: the
  /// constraints are re-cut into that many nnz-balanced shards (1 = force
  /// the legacy unsharded instance).
  core::FactorizedPackingInstance load_all(Index shards = 0) const;

 private:
  /// Shard k's payload bytes: a view into the mapping, or `scratch` filled
  /// by reads.
  const unsigned char* shard_bytes(Index k,
                                   std::vector<unsigned char>& scratch) const;

  std::string path_;
  ChunkedLoadOptions options_;
  Index dim_ = 0;
  Index n_constraints_ = 0;
  Index total_nnz_ = 0;
  std::uint64_t file_size_ = 0;
  std::vector<ChunkedShardInfo> shards_;
  int fd_ = -1;                      ///< mmap backend only
  const unsigned char* map_base_ = nullptr;
  std::uint64_t map_size_ = 0;
};

/// One-call convenience: open, load every shard, assemble. `shards` as in
/// ChunkedInstanceReader::load_all.
core::FactorizedPackingInstance load_factorized_chunked(
    const std::string& path, const ChunkedLoadOptions& options = {},
    Index shards = 0);

/// True when the file at `path` starts with the chunked container magic --
/// the dispatch test CLI tools and manifests use to route one instance path
/// to the chunked or the text loader. Unreadable files return false (the
/// text loader then raises its own open/parse error).
bool is_chunked_instance_file(const std::string& path);

}  // namespace psdp::io
