#include "io/matrix_market.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "util/common.hpp"

namespace psdp::io {

namespace {

struct MmHeader {
  bool coordinate = true;   // false = array
  bool symmetric = false;   // general otherwise
};

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Parse the banner "%%MatrixMarket matrix <format> <field> <symmetry>".
MmHeader read_banner(std::istream& in) {
  std::string line;
  PSDP_CHECK(std::getline(in, line), "matrix market: empty stream");
  std::istringstream banner(line);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  PSDP_CHECK(lower(tag) == "%%matrixmarket",
             "matrix market: missing %%MatrixMarket banner");
  PSDP_CHECK(lower(object) == "matrix",
             str("matrix market: unsupported object '", object, "'"));
  MmHeader header;
  const std::string f = lower(format);
  if (f == "coordinate") {
    header.coordinate = true;
  } else if (f == "array") {
    header.coordinate = false;
  } else {
    PSDP_CHECK(false, str("matrix market: unsupported format '", format, "'"));
  }
  const std::string fl = lower(field);
  PSDP_CHECK(fl == "real" || fl == "double",
             str("matrix market: unsupported field '", field,
                 "' (only real is supported)"));
  const std::string sym = lower(symmetry);
  if (sym == "symmetric") {
    header.symmetric = true;
  } else if (sym == "general") {
    header.symmetric = false;
  } else {
    PSDP_CHECK(false, str("matrix market: unsupported symmetry '", symmetry,
                          "' (general or symmetric)"));
  }
  return header;
}

/// Next content line (skips '%' comments and blank lines).
bool next_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    std::size_t pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos) continue;
    if (line[pos] == '%') continue;
    return true;
  }
  return false;
}

struct ParsedSparse {
  Index rows = 0;
  Index cols = 0;
  std::vector<sparse::Triplet> triplets;
};

ParsedSparse read_coordinate_body(std::istream& in, const MmHeader& header) {
  std::string line;
  PSDP_CHECK(next_line(in, line), "matrix market: missing size line");
  std::istringstream sizes(line);
  Index rows = 0, cols = 0, nnz = 0;
  PSDP_CHECK(static_cast<bool>(sizes >> rows >> cols >> nnz),
             "matrix market: malformed size line");
  PSDP_CHECK(rows >= 1 && cols >= 1 && nnz >= 0,
             "matrix market: non-positive dimensions");
  PSDP_CHECK(!header.symmetric || rows == cols,
             "matrix market: symmetric matrix must be square");

  ParsedSparse parsed;
  parsed.rows = rows;
  parsed.cols = cols;
  parsed.triplets.reserve(static_cast<std::size_t>(nnz));
  for (Index k = 0; k < nnz; ++k) {
    PSDP_CHECK(next_line(in, line),
               str("matrix market: expected ", nnz, " entries, got ", k));
    std::istringstream entry(line);
    Index r = 0, c = 0;
    Real v = 0;
    PSDP_CHECK(static_cast<bool>(entry >> r >> c >> v),
               str("matrix market: malformed entry line '", line, "'"));
    PSDP_CHECK(r >= 1 && r <= rows && c >= 1 && c <= cols,
               str("matrix market: index (", r, ",", c, ") out of range"));
    PSDP_CHECK(std::isfinite(v), "matrix market: non-finite value");
    // Symmetric entries are canonicalized to the lower triangle before
    // the duplicates-sum merge: (r,c) and (c,r) name the *same* logical
    // entry, so a file listing both sums them like any other duplicate
    // -- one mirror per merged entry, never a mirror per listing (the
    // old reader mirrored each listing independently, which silently
    // doubled redundant pairs). Upper-triangle-only files (a common
    // deviation from the spec) keep loading exactly as before.
    if (header.symmetric && c > r) std::swap(r, c);
    parsed.triplets.push_back({r - 1, c - 1, v});
    if (header.symmetric && r != c) {
      parsed.triplets.push_back({c - 1, r - 1, v});
    }
  }
  return parsed;
}

linalg::Matrix read_array_body(std::istream& in, const MmHeader& header) {
  std::string line;
  PSDP_CHECK(next_line(in, line), "matrix market: missing size line");
  std::istringstream sizes(line);
  Index rows = 0, cols = 0;
  PSDP_CHECK(static_cast<bool>(sizes >> rows >> cols),
             "matrix market: malformed size line");
  PSDP_CHECK(rows >= 1 && cols >= 1, "matrix market: non-positive dimensions");
  PSDP_CHECK(!header.symmetric || rows == cols,
             "matrix market: symmetric matrix must be square");

  linalg::Matrix result(rows, cols);
  // Array body is column-major; symmetric array stores the lower triangle
  // of each column.
  for (Index j = 0; j < cols; ++j) {
    const Index start = header.symmetric ? j : 0;
    for (Index i = start; i < rows; ++i) {
      PSDP_CHECK(next_line(in, line), "matrix market: truncated array body");
      std::istringstream entry(line);
      Real v = 0;
      PSDP_CHECK(static_cast<bool>(entry >> v),
                 str("matrix market: malformed value line '", line, "'"));
      PSDP_CHECK(std::isfinite(v), "matrix market: non-finite value");
      result(i, j) = v;
      if (header.symmetric) result(j, i) = v;
    }
  }
  return result;
}

// ------------------------------------------------------------- streaming --

/// Sorted, duplicate-free COO accumulator of canonicalized entries (lower
/// triangle only for symmetric input). Parallel arrays rather than Triplet
/// records so the final columns/values move into the CSR without a copy.
struct CooAccumulator {
  std::vector<Index> rows;
  std::vector<Index> cols;
  std::vector<Real> vals;

  std::size_t size() const { return rows.size(); }
};

/// Stable-sort the staging buffer by (row, col), fold its duplicates left
/// to right (listing order -- the stable sort preserves it), then merge the
/// result into the accumulator, summing keys present on both sides. The
/// accumulator stays sorted and duplicate-free throughout, so every flush
/// is one linear merge.
void flush_staging(std::vector<sparse::Triplet>& staging,
                   CooAccumulator& acc) {
  if (staging.empty()) return;
  std::stable_sort(staging.begin(), staging.end(),
                   [](const sparse::Triplet& a, const sparse::Triplet& b) {
                     return a.row != b.row ? a.row < b.row : a.col < b.col;
                   });
  std::size_t w = 0;
  for (std::size_t i = 0; i < staging.size();) {
    const Index r = staging[i].row;
    const Index c = staging[i].col;
    Real v = staging[i].value;
    std::size_t j = i + 1;
    while (j < staging.size() && staging[j].row == r &&
           staging[j].col == c) {
      v += staging[j].value;
      ++j;
    }
    staging[w++] = {r, c, v};
    i = j;
  }
  staging.resize(w);

  CooAccumulator merged;
  merged.rows.reserve(acc.size() + staging.size());
  merged.cols.reserve(acc.size() + staging.size());
  merged.vals.reserve(acc.size() + staging.size());
  std::size_t a = 0;
  std::size_t s = 0;
  while (a < acc.size() || s < staging.size()) {
    bool take_acc;
    bool both = false;
    if (a >= acc.size()) {
      take_acc = false;
    } else if (s >= staging.size()) {
      take_acc = true;
    } else {
      const Index ar = acc.rows[a], ac = acc.cols[a];
      const Index sr = staging[s].row, sc = staging[s].col;
      if (ar == sr && ac == sc) {
        take_acc = true;
        both = true;
      } else {
        take_acc = ar != sr ? ar < sr : ac < sc;
      }
    }
    if (take_acc) {
      merged.rows.push_back(acc.rows[a]);
      merged.cols.push_back(acc.cols[a]);
      // Earlier listings live in the accumulator: acc + staging keeps the
      // duplicates-sum in listing order across flush boundaries.
      merged.vals.push_back(both ? acc.vals[a] + staging[s].value
                                 : acc.vals[a]);
      ++a;
      if (both) ++s;
    } else {
      merged.rows.push_back(staging[s].row);
      merged.cols.push_back(staging[s].col);
      merged.vals.push_back(staging[s].value);
      ++s;
    }
  }
  acc = std::move(merged);
  staging.clear();
}

/// Assemble the final CSR from the merged accumulator: a straight
/// from_parts adoption for general matrices; for symmetric input each
/// merged lower-triangle entry (r, c) is mirrored exactly once to (c, r).
/// The single pass in (row, col) order fills every row's columns in
/// strictly ascending order -- a row's own (lower) entries arrive before
/// any mirror lands in it, because mirrors come from later rows.
sparse::Csr assemble_streamed(CooAccumulator&& acc, Index rows, Index cols,
                              bool symmetric) {
  std::vector<Index> offsets(static_cast<std::size_t>(rows) + 1, 0);
  const std::size_t merged = acc.size();
  for (std::size_t e = 0; e < merged; ++e) {
    ++offsets[static_cast<std::size_t>(acc.rows[e]) + 1];
    if (symmetric && acc.rows[e] != acc.cols[e]) {
      ++offsets[static_cast<std::size_t>(acc.cols[e]) + 1];
    }
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    offsets[i] += offsets[i - 1];
  }
  if (!symmetric) {
    // Already row-major sorted: the column/value arrays are the CSR body.
    return sparse::Csr::from_parts(rows, cols, std::move(offsets),
                                   std::move(acc.cols),
                                   std::move(acc.vals));
  }
  const Index nnz = offsets.back();
  std::vector<Index> out_cols(static_cast<std::size_t>(nnz));
  std::vector<Real> out_vals(static_cast<std::size_t>(nnz));
  std::vector<Index> cursor(offsets.begin(), offsets.end() - 1);
  for (std::size_t e = 0; e < merged; ++e) {
    const Index r = acc.rows[e];
    const Index c = acc.cols[e];
    const Real v = acc.vals[e];
    Index& at = cursor[static_cast<std::size_t>(r)];
    out_cols[static_cast<std::size_t>(at)] = c;
    out_vals[static_cast<std::size_t>(at)] = v;
    ++at;
    if (r != c) {
      Index& mirror = cursor[static_cast<std::size_t>(c)];
      out_cols[static_cast<std::size_t>(mirror)] = r;
      out_vals[static_cast<std::size_t>(mirror)] = v;
      ++mirror;
    }
  }
  return sparse::Csr::from_parts(rows, cols, std::move(offsets),
                                 std::move(out_cols), std::move(out_vals));
}

void write_banner(std::ostream& out, bool coordinate, bool symmetric) {
  out << "%%MatrixMarket matrix " << (coordinate ? "coordinate" : "array")
      << " real " << (symmetric ? "symmetric" : "general") << "\n";
}

void check_symmetric_csr(const sparse::Csr& matrix) {
  PSDP_CHECK(matrix.rows() == matrix.cols(),
             "matrix market: symmetric output requires a square matrix");
  // Verify symmetry entry-by-entry through a transposed copy: the CSR rows
  // are sorted, so mirror lookup via binary search per entry.
  for (Index i = 0; i < matrix.rows(); ++i) {
    const auto cols = matrix.row_cols(i);
    const auto vals = matrix.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const Index j = cols[k];
      const auto mirror_cols = matrix.row_cols(j);
      const auto mirror_vals = matrix.row_vals(j);
      const auto it = std::lower_bound(mirror_cols.begin(), mirror_cols.end(), i);
      const bool found = it != mirror_cols.end() && *it == i;
      PSDP_CHECK(found, str("matrix market: entry (", i, ",", j,
                            ") has no symmetric mirror"));
      const Real mirrored =
          mirror_vals[static_cast<std::size_t>(it - mirror_cols.begin())];
      PSDP_CHECK(std::abs(mirrored - vals[k]) <=
                     1e-12 * std::max<Real>(1, std::abs(vals[k])),
                 str("matrix market: asymmetric values at (", i, ",", j, ")"));
    }
  }
}

}  // namespace

void write_matrix_market(std::ostream& out, const sparse::Csr& matrix,
                         bool symmetric) {
  if (symmetric) check_symmetric_csr(matrix);
  write_banner(out, /*coordinate=*/true, symmetric);
  // Count emitted entries (lower triangle only when symmetric).
  Index count = 0;
  for (Index i = 0; i < matrix.rows(); ++i) {
    for (const Index j : matrix.row_cols(i)) {
      if (!symmetric || j <= i) ++count;
    }
  }
  out << matrix.rows() << " " << matrix.cols() << " " << count << "\n";
  out << std::setprecision(17);
  for (Index i = 0; i < matrix.rows(); ++i) {
    const auto cols = matrix.row_cols(i);
    const auto vals = matrix.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (symmetric && cols[k] > i) continue;
      out << (i + 1) << " " << (cols[k] + 1) << " " << vals[k] << "\n";
    }
  }
  PSDP_CHECK(static_cast<bool>(out), "matrix market: write failed");
}

void write_matrix_market(std::ostream& out, const linalg::Matrix& matrix,
                         bool symmetric) {
  PSDP_CHECK(matrix.rows() >= 1 && matrix.cols() >= 1,
             "matrix market: empty matrix");
  if (symmetric) {
    PSDP_CHECK(linalg::is_symmetric(matrix, 1e-12),
               "matrix market: symmetric output requires a symmetric matrix");
  }
  write_banner(out, /*coordinate=*/false, symmetric);
  out << matrix.rows() << " " << matrix.cols() << "\n";
  out << std::setprecision(17);
  for (Index j = 0; j < matrix.cols(); ++j) {
    const Index start = symmetric ? j : 0;
    for (Index i = start; i < matrix.rows(); ++i) {
      out << matrix(i, j) << "\n";
    }
  }
  PSDP_CHECK(static_cast<bool>(out), "matrix market: write failed");
}

sparse::Csr read_matrix_market_sparse(std::istream& in) {
  const MmHeader header = read_banner(in);
  if (header.coordinate) {
    ParsedSparse parsed = read_coordinate_body(in, header);
    return sparse::Csr::from_triplets(parsed.rows, parsed.cols,
                                      std::move(parsed.triplets));
  }
  return sparse::Csr::from_dense(read_array_body(in, header));
}

sparse::Csr read_matrix_market_sparse_streaming(
    std::istream& in, const StreamingMmOptions& options) {
  PSDP_CHECK(options.staging_capacity >= 1,
             "matrix market: staging capacity must be positive");
  const MmHeader header = read_banner(in);
  PSDP_CHECK(header.coordinate,
             "matrix market: streaming reader requires coordinate format");

  std::string line;
  PSDP_CHECK(next_line(in, line), "matrix market: missing size line");
  std::istringstream sizes(line);
  Index rows = 0, cols = 0, nnz = 0;
  PSDP_CHECK(static_cast<bool>(sizes >> rows >> cols >> nnz),
             "matrix market: malformed size line");
  PSDP_CHECK(rows >= 1 && cols >= 1 && nnz >= 0,
             "matrix market: non-positive dimensions");
  PSDP_CHECK(!header.symmetric || rows == cols,
             "matrix market: symmetric matrix must be square");

  // Same per-entry validation and canonicalization as the in-RAM body
  // (read_coordinate_body), but the entry lands in a bounded staging
  // buffer instead of a whole-file vector, and symmetric entries are
  // *only* canonicalized here -- the single mirror per merged entry is
  // applied at assembly, never buffered.
  CooAccumulator acc;
  std::vector<sparse::Triplet> staging;
  staging.reserve(static_cast<std::size_t>(
      std::min<Index>(options.staging_capacity, std::max<Index>(1, nnz))));
  for (Index k = 0; k < nnz; ++k) {
    PSDP_CHECK(next_line(in, line),
               str("matrix market: expected ", nnz, " entries, got ", k));
    std::istringstream entry(line);
    Index r = 0, c = 0;
    Real v = 0;
    PSDP_CHECK(static_cast<bool>(entry >> r >> c >> v),
               str("matrix market: malformed entry line '", line, "'"));
    PSDP_CHECK(r >= 1 && r <= rows && c >= 1 && c <= cols,
               str("matrix market: index (", r, ",", c, ") out of range"));
    PSDP_CHECK(std::isfinite(v), "matrix market: non-finite value");
    if (header.symmetric && c > r) std::swap(r, c);
    staging.push_back({r - 1, c - 1, v});
    if (static_cast<Index>(staging.size()) >= options.staging_capacity) {
      flush_staging(staging, acc);
    }
  }
  flush_staging(staging, acc);
  return assemble_streamed(std::move(acc), rows, cols, header.symmetric);
}

linalg::Matrix read_matrix_market_dense(std::istream& in) {
  const MmHeader header = read_banner(in);
  if (!header.coordinate) return read_array_body(in, header);
  ParsedSparse parsed = read_coordinate_body(in, header);
  linalg::Matrix result(parsed.rows, parsed.cols);
  for (const sparse::Triplet& t : parsed.triplets) {
    result(t.row, t.col) += t.value;  // duplicates sum (the documented
                                      // policy, matching Csr::from_triplets)
  }
  return result;
}

void save_matrix_market(const std::string& path, const sparse::Csr& matrix,
                        bool symmetric) {
  std::ofstream out(path);
  PSDP_CHECK(out.is_open(), str("matrix market: cannot open '", path, "'"));
  write_matrix_market(out, matrix, symmetric);
}

void save_matrix_market(const std::string& path, const linalg::Matrix& matrix,
                        bool symmetric) {
  std::ofstream out(path);
  PSDP_CHECK(out.is_open(), str("matrix market: cannot open '", path, "'"));
  write_matrix_market(out, matrix, symmetric);
}

sparse::Csr load_matrix_market_sparse(const std::string& path) {
  std::ifstream in(path);
  PSDP_CHECK(in.is_open(), str("matrix market: cannot open '", path, "'"));
  return read_matrix_market_sparse(in);
}

sparse::Csr load_matrix_market_sparse_streaming(
    const std::string& path, const StreamingMmOptions& options) {
  std::ifstream in(path);
  PSDP_CHECK(in.is_open(), str("matrix market: cannot open '", path, "'"));
  return read_matrix_market_sparse_streaming(in, options);
}

linalg::Matrix load_matrix_market_dense(const std::string& path) {
  std::ifstream in(path);
  PSDP_CHECK(in.is_open(), str("matrix market: cannot open '", path, "'"));
  return read_matrix_market_dense(in);
}

}  // namespace psdp::io
